"""Template translation: compile basic blocks into host-Python functions.

This is the fast half of the machine's dual-mode engine, shaped like the
basic-block translators of fast cycle-accounting simulators (QEMU's TCG,
gem5 fast-forward): decode the guest :class:`~repro.vm.isa.Program` into
superblocks (single-entry multi-exit traces that follow conditional
fall-through and fold forward jumps), then ``exec``-compile every block
into one specialized Python function.  Inside a block

- opcode dispatch is gone (each instruction became a dedicated statement),
- register/array accesses are inlined with constant indices,
- the static cycle cost and instruction count are folded into per-block
  constants applied once at block exit,

while everything *dynamic* keeps exact per-access accounting: loads and
stores still walk the cache hierarchy, conditional branches still train
the 2-bit predictor, and error paths re-materialize the precise
``MachineState`` the interpreter would have produced (same message, same
ip, same counter values).

Sampling exactness is preserved by a conservative *event bound* computed
per block and per PMU event: the worst-case number of countdown events
the block can generate.  The driver only enters a block when the live
countdown strictly exceeds that bound, so a sample can never fall due
mid-block; the countdown is then paid in one block-sized chunk.  When the
bound check fails, the machine falls back to the interpreter for the rest
of the sampling window (see ``Machine._run_fast``), which keeps sample
streams bit-identical to pure interpretation.

Translation gets more aggressive where the countdown allows it: traces
rooted at loop heads inline their side-exit continuations into superblock
*trees* (bounded by ``_TREE_BUDGET`` and ``_TREE_DEPTH``), and a branch
back to the trace's own head closes the loop inside the compiled function
— after re-checking the instruction budget (and, armed, the countdown)
exactly as the driver would — so hot loops run without returning to the
dispatch loop at all.  With the PMU unarmed there is no countdown to
protect and trees grow to the instruction budget; armed, tree growth is
additionally capped by ``bound_cap`` — a worst-case-event allowance
derived from the sampling period (``period // 8``) — so the admission
check still passes for almost the whole sampling window and coarse
periods (like the serve path's always-on profiling) keep near-unarmed
speed.

Translations are cached on the Program object, keyed by the sampled event
and the armed bound cap (the countdown bookkeeping is specialized per
event), so the up-to-four morsel workers of one query share a single
translation.

Tier 2 (``tier=2``, driven by :mod:`repro.vm.tiering`) recompiles hot
programs with *deferred sync*: inside a loop-head superblock the counters
(instructions, cycles, loads, stores, cache accesses), the branch
predictor's per-ip 2-bit counters, and the PMU countdown all live in
Python locals, and the loop back edge only folds the path's static totals
into those locals — the full flush to machine state happens exclusively at
real exits and at guard misses (countdown low, budget low, or the
test-only ``m._tier_guard`` trip).  That flush *is* the deoptimization
path: it reconstructs the exact interpreter-visible state (registers,
counters, countdown, predictor) before handing the resume ip back to the
driver, so a guard miss mid-superblock is invisible to sample streams and
counter parity.  A ``bias`` snapshot of the rolling predictor counters
additionally specializes biased branches: the 2-bit update is split per
arm so the condition is tested once, and a branch that goes its
predicted way on a saturated counter does no work at all (the counter
stays put and the predicted cycle is path-static); the fast-path guard
re-checks the live counter so a drifted snapshot costs speed, never
exactness.  Retired-branch counts are path-static and fold into the
sync/edge constants like instruction counts do.

Three more tier-2 specializations ride on the same exactness argument:

- *Same-line memoization*: after any load/store, the accessed cache line
  is by construction the MRU entry of its L1 set, so a repeat access to
  the line recorded in the ``_mln`` local is a guaranteed MRU hit — one
  shift and one compare replace the whole set lookup.
- *Slim loop edges* (unarmed deferred loops): every back-edge path
  retires a static mix of instructions/loads/stores/branches, so the
  edge bumps one per-path iteration counter plus a fused
  decrement-and-test instruction-budget countdown, and flush sites
  rebuild the absolute totals as linear combinations of the counters.
- *Hot-block trees*: the rolling profile's per-block entry counts mark
  blocks entered hundreds of times per run without a closed loop — the
  links of per-row probe chains — and tier 2 grows superblock trees at
  them too, so one driver dispatch covers the whole per-row path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VMError
from repro.vm import costs
from repro.vm.isa import Opcode, Program, TERMINATOR_OPS, block_leaders
from repro.vm.pmu import Event

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63

# countdown-bookkeeping mode per sampled event (None = PMU off)
_MODES = {
    None: "",
    Event.INSTRUCTIONS: "instr",
    Event.CYCLES: "cycles",
    Event.LOADS: "loads",
    Event.L1_MISS: "l1",
    Event.BRANCH_MISS: "brmiss",
}

# Superblock-tree growth limits: total emitted instructions per block
# function and inlining depth of side-exit continuations.  Armed
# translations additionally cap the tree's worst-case event bound at
# ``bound_cap`` so it stays small against the sampling countdown.
_TREE_BUDGET = 1536
_TREE_DEPTH = 8

# Deferred-sync gate: a loop head qualifies when the profile shows at
# least this many retired instructions per recorded block entry — the
# entry/exit accumulator setup is ~20 statements, so a loop must run
# long enough per entry to amortize it.  Scan loops (one entry per
# morsel, thousands of iterations) clear this easily; join-probe chains
# (one entry per row, 1-2 iterations) never do.
_DEFER_MIN_WORK = 512

# Segment length of the armed cycles-mode linear fallback: the driver
# admits the block on the *first* segment's worst-case bound only, and
# the block re-checks the live countdown before every further segment.
# Cycles is the one event whose worst-case bound (every load misses to
# memory) towers over the typical cost, so whole-block admission would
# hand the last ~worst-case-bound stretch of every sampling window to
# the interpreter; segmentation shrinks that tail to one segment.
_FALLBACK_SEG = 8

# worst-case cycle cost per opcode, for the CYCLES event bound
_WORST_CYCLES = {
    Opcode.LOAD: costs.LAT_MEM,
    Opcode.STORE: costs.CYCLES_STORE,
    Opcode.MUL: costs.CYCLES_MUL,
    Opcode.MULI: costs.CYCLES_MUL,
    Opcode.SDIV: costs.CYCLES_DIV,
    Opcode.SREM: costs.CYCLES_DIV,
    Opcode.FDIV: costs.CYCLES_DIV,
    Opcode.CRC32: costs.CYCLES_CRC32,
    Opcode.JMP: costs.CYCLES_BRANCH,
    Opcode.BRZ: costs.CYCLES_BRANCH + costs.CYCLES_BRANCH_MISS,
    Opcode.BRNZ: costs.CYCLES_BRANCH + costs.CYCLES_BRANCH_MISS,
    Opcode.CALL: costs.CYCLES_CALL,
    Opcode.RET: costs.CYCLES_RET,
    Opcode.KCALL: 0,  # the kernel accounts for itself via advance_external
    Opcode.HALT: 0,   # returns before any cost is charged
}

_SIMPLE_BINOPS = {
    Opcode.ADD: "+", Opcode.SUB: "-", Opcode.AND: "&",
    Opcode.OR: "|", Opcode.XOR: "^",
}
_CMP_OPS = {
    Opcode.CMPEQ: "==", Opcode.CMPNE: "!=", Opcode.CMPLT: "<",
    Opcode.CMPLE: "<=", Opcode.CMPGT: ">", Opcode.CMPGE: ">=",
}
_CMP_IMM_OPS = {
    Opcode.CMPEQI: "==", Opcode.CMPNEI: "!=", Opcode.CMPLTI: "<",
    Opcode.CMPLEI: "<=", Opcode.CMPGTI: ">", Opcode.CMPGEI: ">=",
}

_KNOWN_OPS = (
    set(_SIMPLE_BINOPS) | set(_CMP_OPS) | set(_CMP_IMM_OPS) | set(_WORST_CYCLES)
    | {
        Opcode.NOP, Opcode.MOV, Opcode.MOVI, Opcode.ADDI, Opcode.ANDI,
        Opcode.SHLI, Opcode.SHRI, Opcode.XORI, Opcode.SHL, Opcode.SHR,
        Opcode.ROTR, Opcode.CVTIF, Opcode.CVTFI, Opcode.SELECT,
        Opcode.MIN, Opcode.MAX,
    }
)


@dataclass
class Translation:
    """All compiled blocks of one program for one PMU event mode.

    ``blocks`` maps a leader ip to ``(fn, n_instructions, event_bound,
    fallback)``; ``fn(machine, regs, words, state, caches, predictor)``
    executes the block and returns the next ip (negative = the run is
    complete).  ``fallback`` is ``None``, or a linear
    ``(fn, n_instructions, event_bound)`` variant of the same leader with
    a much smaller bound: when the live countdown is too low to admit an
    armed superblock tree, the driver runs the linear variant instead of
    dropping all the way to the interpreter, so only the last few hundred
    events before each sample interpret.
    """

    blocks: dict[int, tuple]
    event: Event | None
    code_len: int
    code_id: int
    source: str  # kept for debugging / tests
    tier: int = 1

    def stale_for(self, program: Program) -> bool:
        return (
            self.code_len != len(program.code)
            or self.code_id != id(program.code)
        )


def translation_key(
    event: Event | None, bound_cap: int, tier: int = 1,
    guard_hook: bool = False,
) -> tuple:
    """Cache key of one translation variant on a Program object."""
    return (
        event.name if event is not None else None,
        bound_cap, tier, guard_hook,
    )


def translation_for(
    program: Program, event: Event | None, bound_cap: int = 0,
    tier: int = 1, bias: dict | None = None, guard_hook: bool = False,
) -> Translation:
    """Return the (cached) translation of ``program`` for ``event``.

    ``bound_cap`` is the armed tree-growth allowance in worst-case
    countdown events (0 disables armed trees); unarmed translations
    ignore it.  ``tier=2`` compiles the profile-specialized variant
    (``bias`` is the promotion-time predictor-counter snapshot;
    ``guard_hook`` additionally compiles the test-only forced-deopt
    guard into every loop edge)."""
    cache = getattr(program, "_vm_translations", None)
    if cache is None:
        cache = {}
        program._vm_translations = cache
    key = translation_key(event, bound_cap, tier, guard_hook)
    entry = cache.get(key)
    if entry is None or entry.stale_for(program):
        entry = translate_program(
            program, event, bound_cap, tier=tier, bias=bias,
            guard_hook=guard_hook,
        )
        cache[key] = entry
    return entry


def translate_program(
    program: Program, event: Event | None, bound_cap: int = 0,
    tier: int = 1, bias: dict | None = None, guard_hook: bool = False,
    entries: dict | None = None, hot_weight: int = 0,
) -> Translation:
    """Decode ``program`` into basic blocks and compile each one.

    Beyond the classic leaders, the worklist also chains *continuation*
    blocks: when a block hits the size cap (or stops before an
    untranslatable instruction) mid-straight-line-code, its fall-through
    address gets a block of its own, so long arithmetic runs never drop
    into the interpreter.
    """
    mode = _MODES[event]
    # armed translations cap trace length so worst-case event bounds stay
    # well under the countdown; unarmed ones have no countdown to protect
    cap = (
        costs.FAST_VM_MAX_BLOCK
        if event is not None
        else costs.FAST_VM_MAX_BLOCK_PLAIN
    )
    if tier >= 2 and event is not None and bound_cap:
        # What admission actually protects is the worst-case *event*
        # bound, not the instruction count — tier-2 armed roots therefore
        # decode at the plain cap and _emit_block trims them back by
        # event bound.  A loop body longer than the tier-1 cap can then
        # still close into an in-function loop instead of paying a driver
        # dispatch per iteration.
        cap = costs.FAST_VM_MAX_BLOCK_PLAIN
    # tier-2 trees may grow much larger: their compile time is only paid
    # for programs the profile already proved hot
    tree_budget = costs.TIER2_TREE_BUDGET if tier >= 2 else _TREE_BUDGET
    tree_depth = costs.TIER2_TREE_DEPTH if tier >= 2 else _TREE_DEPTH
    code = program.code
    leaders = block_leaders(program)
    chunks: list[str] = []
    metas: list[tuple[int, int, int, tuple | None]] = []
    done: set[int] = set()
    queue = sorted(leaders)
    while queue:
        start = queue.pop()
        if start in done or not 0 <= start < len(code):
            continue
        done.add(start)
        emitted = _emit_block(
            code, start, cap, mode, bound_cap, tier=tier, bias=bias,
            guard_hook=guard_hook, tree_budget=tree_budget,
            tree_depth=tree_depth, entries=entries, hot_weight=hot_weight,
        )
        if emitted is None:
            continue
        src, n_instr, bound, fallthroughs = emitted
        chunks.append(src)
        fb_meta = None
        if mode and bound_cap:
            # the armed tree's bound keeps it out of the last stretch of
            # every sampling window; give the driver a linear variant
            # with a tight bound to run there instead of interpreting
            # (always at the short tier-1 cap — the fallback's whole job
            # is a small bound)
            linear = _emit_block(
                code, start, costs.FAST_VM_MAX_BLOCK, mode, 0, suffix="f"
            )
            if linear is not None and linear[2] < bound:
                lin_src, lin_n, lin_bound, lin_falls = linear
                chunks.append(lin_src)
                fb_meta = (lin_n, lin_bound)
                fallthroughs = list(fallthroughs) + list(lin_falls)
        metas.append((start, n_instr, bound, fb_meta))
        for ft in fallthroughs:
            if ft not in done:
                queue.append(ft)
    source = "\n".join(chunks)
    namespace: dict = {"VMError": VMError, "crc32_mix": _crc32_mix()}
    exec(compile(source, f"<fastvm:{mode or 'plain'}>", "exec"), namespace)
    blocks = {
        start: (
            namespace[f"_b{start}"], n_instr, bound,
            (
                (namespace[f"_b{start}f"], fb_meta[0], fb_meta[1])
                if fb_meta is not None
                else None
            ),
        )
        for start, n_instr, bound, fb_meta in metas
    }
    return Translation(
        blocks=blocks,
        event=event,
        code_len=len(code),
        code_id=id(code),
        source=source,
        tier=tier,
    )


def _crc32_mix():
    # machine.py imports this module lazily, so the reverse import here
    # cannot form a cycle at module-load time
    from repro.vm.machine import crc32_mix

    return crc32_mix


def _translatable(ins: tuple) -> bool:
    """True when the instruction's operands fit the templates below.

    Anything odd — an unresolved label in a branch slot, a negative
    target, a non-numeric immediate — is left to the interpreter, which
    either handles it or produces the canonical error for it.
    """
    op = ins[0]
    if op not in _KNOWN_OPS:
        return False
    if op == Opcode.JMP or op == Opcode.CALL:
        return isinstance(ins[1], int) and ins[1] >= 0
    if op == Opcode.BRZ or op == Opcode.BRNZ:
        return isinstance(ins[2], int) and ins[2] >= 0
    if op in (Opcode.LOAD, Opcode.STORE, Opcode.SHLI, Opcode.SHRI):
        return isinstance(ins[3], int)
    if op == Opcode.MOVI:
        return isinstance(ins[2], (int, float))
    if op == Opcode.SELECT:
        return isinstance(ins[3], tuple) and len(ins[3]) == 2
    if op in _CMP_IMM_OPS or op in (
        Opcode.ADDI, Opcode.MULI, Opcode.ANDI, Opcode.XORI
    ):
        return isinstance(ins[3], (int, float))
    return True


def _decode_trace(code: list[tuple], start: int, cap: int):
    """Follow the expected-hot path from ``start`` (superblock decoding).

    Returns ``(items, fallthrough)`` with items in retire order.  A
    conditional branch does not end the trace: decoding continues on the
    not-taken (fall-through) arm and the taken arm becomes a *side exit*
    in the emitted code — loop bodies laid out with backward taken edges
    therefore translate into a single block per iteration.  A strictly
    forward JMP is folded into the trace (it only costs cycles).  The
    trace ends at CALL/RET/KCALL/HALT, a backward jump, an untranslatable
    instruction, or the size cap; for the latter three, ``fallthrough``
    is the next ip to execute (the caller chains a continuation there).
    """
    items: list[tuple[int, tuple]] = []
    ip = start
    limit = len(code)
    while 0 <= ip < limit and len(items) < cap:
        ins = code[ip]
        op = ins[0]
        if not _translatable(ins):
            # executing it falls back to the interpreter, which raises
            # the exact "illegal opcode" error if it must
            break
        items.append((ip, ins))
        if op == Opcode.JMP:
            if ins[1] > ip:
                ip = ins[1]
                continue
            return items, None
        if op == Opcode.BRZ or op == Opcode.BRNZ:
            ip += 1
            continue
        if op in TERMINATOR_OPS:  # CALL, RET, KCALL, HALT
            return items, None
        ip += 1
    return items, ip


def _emit_block(
    code, start, cap, mode, bound_cap=0, suffix="", tier=1, bias=None,
    guard_hook=False, tree_budget=_TREE_BUDGET, tree_depth=_TREE_DEPTH,
    entries=None, hot_weight=0,
):
    """Emit the source of one block function; None if nothing translatable.

    Returns ``(source, max_path_instructions, event_bound,
    fallthrough_ips)``; the fallthrough ips are continuation addresses
    where some path of the block hands control back without a terminator
    (size cap or untranslatable instruction), so :func:`translate_program`
    can chain continuation blocks there.

    Blocks rooted at loop heads may grow *superblock trees*: the
    continuation of a side exit is decoded and inlined into the taken arm
    (up to a total budget), so hot paths that zig-zag through taken
    branches — and loop cycles that cross several trace heads before
    branching back to this block's start — run inside one Python function
    instead of bouncing through the driver.  Unarmed blocks grow to the
    instruction budget; armed ones stop once the tree's worst-case event
    bound would exceed ``bound_cap``, which keeps the driver's admission
    check passing for almost the whole sampling window.
    """
    root_items, root_fall = _decode_trace(code, start, cap)
    if not root_items:
        return None
    if mode and bound_cap and len(root_items) > costs.FAST_VM_MAX_BLOCK:
        # Tier-2 armed roots decode past the tier-1 instruction cap (see
        # translate_program); keep the longest prefix whose worst-case
        # event bound still leaves tree headroom under ``bound_cap``, but
        # never trim below the tier-1 cap.  The cut point's ip is where
        # control would continue, so it becomes the fall-through leader.
        allowance = bound_cap // 2
        kept = costs.FAST_VM_MAX_BLOCK
        acc = _event_bound(root_items[:kept], mode)
        while kept < len(root_items):
            step = _event_bound(root_items[kept:kept + 1], mode)
            if acc + step > allowance:
                break
            acc += step
            kept += 1
        if kept < len(root_items):
            root_fall = root_items[kept][0]
            root_items = root_items[:kept]

    # Trees are grown only at *loop heads* — roots whose own trace
    # branches back to start.  Hot cycles always contain a loop head, so
    # the closed loop forms there, while cold leaders stay linear and the
    # generated source stays compact enough to compile quickly.
    is_loop_head = any(
        (ins[0] == Opcode.JMP and ins[1] == start)
        or (
            (ins[0] == Opcode.BRZ or ins[0] == Opcode.BRNZ)
            and ins[2] == start
        )
        for _, ins in root_items
    )
    bound = _event_bound(root_items, mode)
    # Tier 2 additionally grows trees at profile-hot non-loop blocks: a
    # block entered hundreds of times per run without a closed loop is a
    # link of a per-row dispatch chain (join probe, EXISTS check), and
    # inlining its continuations lets one driver dispatch cover the
    # whole chain.
    hot_block = (
        tier >= 2
        and entries is not None
        and entries.get(start, 0) >= costs.TIER2_HOT_BLOCK_ENTRIES
    )
    tree = (is_loop_head or hot_block) and (mode == "" or bound < bound_cap)
    # Tier-2 deferred sync only pays off where a loop amortizes the bigger
    # entry/exit sequences: the accumulator setup costs ~20 statements per
    # block *entry*, so a short-trip loop (a join-probe chain averaging one
    # or two iterations) loses.  The rolling profile's per-block execution
    # counts separate the two — a scan loop is entered once per morsel, a
    # probe chain once per row.  Deferral needs the block's share of the
    # observed work per entry to dwarf the setup cost; blocks the profile
    # never saw stay deferred (they are cold, the entry cost is unpaid).
    # Gated-off loop heads keep the tier-1 sync shape but still get the
    # tier-2 load/store fusion, which has no entry cost.
    deferred = tier >= 2 and is_loop_head
    if deferred and entries is not None:
        # An armed tier-1 map could not close this loop when its body is
        # longer than the tier-1 cap, so its profile counted one entry
        # per *iteration* — the per-entry work gate would misread a scan
        # loop as a probe chain there and is skipped (closing the loop is
        # what tier 2 just fixed).
        if not (mode and len(root_items) > costs.FAST_VM_MAX_BLOCK):
            n_entries = entries.get(start, 0)
            deferred = n_entries * _DEFER_MIN_WORK <= hot_weight
    branch_ips: set[int] = set()
    if tree:
        # inlined continuations can bring loads/branches anywhere, so the
        # dynamic-cycles accumulator is unconditional
        has_dyn = True
    else:
        has_dyn = any(
            ins[0] == Opcode.LOAD
            or ins[0] == Opcode.BRZ
            or ins[0] == Opcode.BRNZ
            for _, ins in root_items
        )
    # Deferred loops let ``cy`` (dynamic cycles: cache misses,
    # mispredicts) accumulate *across* iterations instead of folding it
    # into ``_cyt`` and resetting at every back edge — exits and flushes
    # add ``cy`` once.  Not for the two modes whose loop edges consume a
    # per-iteration delta: ``cycles`` decrements the countdown by each
    # iteration's cost, ``l1`` by the per-iteration miss count ``_mi``.
    defer_cy = deferred and mode in ("", "instr", "loads", "brmiss")
    # Slim edges (unarmed deferred loops only): every back-edge path
    # retires a *static* mix of instructions/loads/stores/branches, so
    # instead of bumping four accumulators per iteration the edge bumps
    # one per-path iteration counter and a fused budget countdown; the
    # absolute totals are reconstructed as linear combinations of the
    # path counters at the (cold) flush sites.  Armed loops keep the
    # accumulators — their edges must also pay the live countdown.
    slim = deferred and mode == ""
    edges: list[dict] = []
    # segmented admission for the cycles-mode linear fallback ("f"
    # variant): see _FALLBACK_SEG
    seg = _FALLBACK_SEG if (suffix == "f" and mode == "cycles") else 0
    if seg and len(root_items) > seg:
        # the driver (and the loop edge, when the fallback closes a
        # short loop) only needs to cover the first segment — the block
        # re-checks before every later one
        bound = _event_bound(root_items[:seg], mode)
    # armed trees can inline loads into a load-free root, so the L1-miss
    # accumulator must exist whenever an arm *could* bring one
    track_l1 = mode == "l1" and (
        tree or any(ins[0] == Opcode.LOAD for _, ins in root_items)
    )

    # Registers are cached in Python locals (``r5`` for ``regs[5]``) for
    # the whole block: nothing outside the block can observe ``regs``
    # while it runs, so reads/writes stay private until an exit.  Every
    # used register is loaded up front (so early error exits can write
    # back unconditionally) and every *written* register is flushed at
    # each exit — the \x00WB placeholder marks those flush points and is
    # expanded once the full written set is known.  \x00LE marks loop
    # edges, expanded once the worst-case path length is known.
    used_regs: set[int] = set()
    written_regs: set[int] = set()
    flags = {"mem": False, "loop": False}
    fallthroughs: list[int] = []
    max_k = 0  # worst-case instructions retired on any path
    emitted = 0  # total instructions emitted (tree growth budget)

    def rg(i: int) -> str:
        used_regs.add(i)
        return f"r{i}"

    def wr(i: int) -> str:
        used_regs.add(i)
        written_regs.add(i)
        return f"r{i}"

    def try_inline(t, k, pend0, loads0, stores0, branches0, path, depth):
        """Inline the continuation at ``t`` into the current arm.

        Returns its emitted lines (at base indent), or None when trees
        are disabled, the target closes a non-root cycle, the growth
        budget/depth is exhausted, or (armed) the continuation would push
        the tree's worst-case event bound past ``bound_cap``."""
        nonlocal bound
        if (
            not tree
            or depth >= tree_depth
            or t in path
            or emitted >= tree_budget
        ):
            return None
        sub_items, sub_fall = _decode_trace(
            code, t, min(cap, tree_budget - emitted)
        )
        if not sub_items:
            return None
        if mode:
            sub_bound = _event_bound(sub_items, mode)
            if bound + sub_bound > bound_cap:
                return None
            bound += sub_bound
        return emit_seq(
            sub_items, sub_fall, k, pend0, loads0, stores0, branches0,
            path | {t}, depth + 1,
        )

    def emit_seq(
        items, fall, k0, pend0, loads0, stores0, branches0, path, depth
    ):
        """Emit one decoded trace; recursion happens at inlined exits.

        ``k0``/``pend0``/``loads0``/``stores0``/``branches0`` carry the
        retired-count, statically-known cycles, memory-op and
        conditional-branch counts accumulated on the path into this
        trace, so sync points flush absolute totals."""
        nonlocal max_k, emitted
        emitted += len(items)
        lines: list[str] = []
        pend = pend0
        loads_done = loads0
        stores_done = stores0
        branches_done = branches0

        def cy_expr(const: int) -> str:
            if has_dyn:
                return f"cy + {const}" if const else "cy"
            return str(const)

        def emit_error_sync(k: int, extra: int = 0) -> None:
            nonlocal max_k
            max_k = max(max_k, k)
            lines.append(f"\x00WB        \x00{branches_done}")
            expr = cy_expr(pend + extra)
            if deferred:
                # fold the deferred accumulators back in so the raised
                # error leaves the exact interpreter-visible state
                lines.append(
                    f"        state.cycles += _cyt + {expr}"
                    if expr != "0"
                    else "        state.cycles += _cyt"
                )
                lines.append(f"        state.instructions += _ins + {k}")
                ld = f"_ld + {loads_done}" if loads_done else "_ld"
                st = f"_st + {stores_done}" if stores_done else "_st"
                lines.append(f"        state.loads += {ld}")
                lines.append(f"        state.stores += {st}")
                total = loads_done + stores_done
                lines.append(
                    f"        caches.accesses += _ld + _st + {total}"
                    if total
                    else "        caches.accesses += _ld + _st"
                )
                if mode:
                    lines.append("        m._countdown = _cd")
                return
            if expr != "0":
                lines.append(f"        state.cycles += {expr}")
            lines.append(f"        state.instructions += {k}")
            if loads_done:
                lines.append(f"        state.loads += {loads_done}")
            if stores_done:
                lines.append(f"        state.stores += {stores_done}")
            if loads_done + stores_done:
                lines.append(
                    f"        caches.accesses += {loads_done + stores_done}"
                )

        def emit_sync(
            k: int, extra, instr_events: int, indent: str = "    "
        ) -> None:
            """Sync counters and pay the countdown at an exit retiring
            ``k`` instructions; ``extra`` is the exiting instruction's
            cost — an int, or the name of a local holding a dynamic
            cost."""
            nonlocal max_k
            max_k = max(max_k, k)
            lines.append(f"\x00WB{indent}\x00{branches_done}")
            if isinstance(extra, int):
                expr = cy_expr(pend + extra)
            else:
                expr = f"{cy_expr(pend)} + {extra}"
            if deferred:
                ld = f"_ld + {loads_done}" if loads_done else "_ld"
                st = f"_st + {stores_done}" if stores_done else "_st"
                lines.append(f"{indent}state.loads += {ld}")
                lines.append(f"{indent}state.stores += {st}")
                total = loads_done + stores_done
                lines.append(
                    f"{indent}caches.accesses += _ld + _st + {total}"
                    if total
                    else f"{indent}caches.accesses += _ld + _st"
                )
                if mode == "cycles":
                    lines.append(f"{indent}_t = {expr}")
                    lines.append(f"{indent}state.cycles += _cyt + _t")
                    lines.append(f"{indent}state.instructions += _ins + {k}")
                    lines.append(f"{indent}m._countdown = _cd - _t")
                else:
                    lines.append(
                        f"{indent}state.cycles += _cyt + {expr}"
                        if expr != "0"
                        else f"{indent}state.cycles += _cyt"
                    )
                    lines.append(f"{indent}state.instructions += _ins + {k}")
                    if mode == "instr":
                        lines.append(
                            f"{indent}m._countdown = _cd - {instr_events}"
                            if instr_events
                            else f"{indent}m._countdown = _cd"
                        )
                    elif mode == "loads":
                        lines.append(
                            f"{indent}m._countdown = _cd - {loads_done}"
                            if loads_done
                            else f"{indent}m._countdown = _cd"
                        )
                    elif track_l1:
                        lines.append(f"{indent}m._countdown = _cd - _mi")
                    elif mode:
                        lines.append(f"{indent}m._countdown = _cd")
                return
            if loads_done:
                lines.append(f"{indent}state.loads += {loads_done}")
            if stores_done:
                lines.append(f"{indent}state.stores += {stores_done}")
            if loads_done + stores_done:
                lines.append(
                    f"{indent}caches.accesses += {loads_done + stores_done}"
                )
            if mode == "cycles":
                lines.append(f"{indent}_t = {expr}")
                lines.append(f"{indent}state.cycles += _t")
                lines.append(f"{indent}state.instructions += {k}")
                lines.append(f"{indent}m._countdown -= _t")
            else:
                if expr != "0":
                    lines.append(f"{indent}state.cycles += {expr}")
                lines.append(f"{indent}state.instructions += {k}")
                if mode == "instr" and instr_events:
                    lines.append(f"{indent}m._countdown -= {instr_events}")
                elif mode == "loads" and loads_done:
                    lines.append(f"{indent}m._countdown -= {loads_done}")
                elif track_l1:
                    lines.append(f"{indent}m._countdown -= _mi")

        def emit_edge_acc(
            k: int, extra, instr_events: int, indent: str = "    "
        ) -> int:
            """Deferred loop edge: fold the path's static totals into the
            function-local accumulators instead of flushing — the flush
            happens only if the admission re-check fails (see the \\x00LE
            expansion).  Slim (unarmed) edges bump a single per-path
            iteration counter instead; the totals are rebuilt from the
            counters at flush sites.  Returns the edge index (slim) or
            -1."""
            nonlocal max_k
            max_k = max(max_k, k)
            if slim:
                idx = len(edges)
                edges.append({
                    "k": k,
                    "ld": loads_done,
                    "st": stores_done,
                    "cy": pend + (extra if isinstance(extra, int) else 0),
                    "pb": branches_done,
                })
                lines.append(f"{indent}_e{idx} += 1")
                return idx
            lines.append(f"{indent}_ins += {k}")
            if loads_done:
                lines.append(f"{indent}_ld += {loads_done}")
            if stores_done:
                lines.append(f"{indent}_st += {stores_done}")
            if branches_done:
                lines.append(f"{indent}_pb += {branches_done}")
            if isinstance(extra, int):
                expr = cy_expr(pend + extra)
            else:
                expr = f"{cy_expr(pend)} + {extra}"
            if mode == "cycles":
                lines.append(f"{indent}_t = {expr}")
                lines.append(f"{indent}_cyt += _t")
                lines.append(f"{indent}_cd -= _t")
            else:
                if defer_cy and isinstance(extra, int):
                    # ``cy`` rides across iterations; only the path's
                    # static cycles fold into the accumulator here
                    if pend + extra:
                        lines.append(f"{indent}_cyt += {pend + extra}")
                elif expr != "0":
                    lines.append(f"{indent}_cyt += {expr}")
                if mode == "instr" and instr_events:
                    lines.append(f"{indent}_cd -= {instr_events}")
                elif mode == "loads" and loads_done:
                    lines.append(f"{indent}_cd -= {loads_done}")
                elif track_l1:
                    lines.append(f"{indent}_cd -= _mi")
            return -1

        def emit_loop_edge(indent: str, edge_idx: int = -1) -> None:
            """Re-run the driver's admission check, then take the back
            edge of the function-level loop (a ``continue`` jumps to the
            block start: counters were just synced, ``cy`` resets at the
            loop top)."""
            flags["loop"] = True
            lines.append(f"\x00LE{indent}\x00{edge_idx}")

        for index, (ip, ins) in enumerate(items):
            if seg and depth == 0 and index and index % seg == 0:
                # segmented admission re-check: the driver only covered
                # the first segment's worst-case bound, so before each
                # further segment compare the live countdown against the
                # next segment; on failure sync exactly and hand the
                # mid-trace ip back (the interpreter finishes the short
                # remaining stretch of the sampling window)
                nxt = _event_bound(items[index:index + seg], mode)
                lines.append(
                    f"    if m._countdown - {cy_expr(pend)} <= {nxt}:"
                )
                emit_sync(k0 + index, 0, k0 + index, indent="        ")
                lines.append(f"        return {ip}")
            op = ins[0]
            k = k0 + index + 1  # instructions retired including this one
            d, a, b = ins[1], ins[2], ins[3]

            if op == Opcode.NOP:
                pend += 1
            elif op == Opcode.MOV:
                lines.append(f"    {wr(d)} = {rg(a)}")
                pend += 1
            elif op == Opcode.MOVI:
                lines.append(f"    {wr(d)} = {a!r}")
                pend += 1
            elif op in _SIMPLE_BINOPS:
                sym = _SIMPLE_BINOPS[op]
                lines.append(f"    {wr(d)} = {rg(a)} {sym} {rg(b)}")
                pend += 1
            elif op in _CMP_OPS:
                sym = _CMP_OPS[op]
                lines.append(
                    f"    {wr(d)} = 1 if {rg(a)} {sym} {rg(b)} else 0"
                )
                pend += 1
            elif op in _CMP_IMM_OPS:
                sym = _CMP_IMM_OPS[op]
                lines.append(
                    f"    {wr(d)} = 1 if {rg(a)} {sym} {b!r} else 0"
                )
                pend += 1
            elif op == Opcode.ADDI:
                lines.append(f"    {wr(d)} = {rg(a)} + {b!r}")
                pend += 1
            elif op == Opcode.ANDI:
                lines.append(f"    {wr(d)} = {rg(a)} & {b!r}")
                pend += 1
            elif op == Opcode.XORI:
                lines.append(f"    {wr(d)} = {rg(a)} ^ {b!r}")
                pend += 1
            elif op == Opcode.SHLI:
                lines.append(
                    f"    {wr(d)} = ({rg(a)} << {b & 63}) & {_MASK64}"
                )
                pend += 1
            elif op == Opcode.SHRI:
                lines.append(
                    f"    {wr(d)} = ({rg(a)} & {_MASK64}) >> {b & 63}"
                )
                pend += 1
            elif op == Opcode.SHL:
                lines.append(
                    f"    {wr(d)} = ({rg(a)} << ({rg(b)} & 63)) & {_MASK64}"
                )
                pend += 1
            elif op == Opcode.SHR:
                lines.append(
                    f"    {wr(d)} = ({rg(a)} & {_MASK64}) >> ({rg(b)} & 63)"
                )
                pend += 1
            elif op == Opcode.ROTR:
                lines += [
                    f"    _v = {rg(a)} & {_MASK64}",
                    f"    _s = {rg(b)} & 63",
                    f"    {wr(d)} = ((_v >> _s) | (_v << (64 - _s)))"
                    f" & {_MASK64}",
                ]
                pend += 1
            elif op == Opcode.MUL or op == Opcode.MULI:
                rhs = rg(b) if op == Opcode.MUL else repr(b)
                if tier >= 2:
                    # specialized trace: an in-range product (int or
                    # float) is its own wrapped value, so the mask dance
                    # only runs on actual 64-bit overflow (or inf/NaN,
                    # which fail both comparisons and fall through the
                    # isinstance test unchanged, exactly like tier 1)
                    lines += [
                        f"    _r = {rg(a)} * {rhs}",
                        f"    if {-_SIGN64} <= _r < {_SIGN64}:",
                        f"        {wr(d)} = _r",
                        "    else:",
                        "        if isinstance(_r, int):",
                        f"            _r &= {_MASK64}",
                        f"            if _r & {_SIGN64}:",
                        f"                _r -= {1 << 64}",
                        f"        {wr(d)} = _r",
                    ]
                else:
                    lines += [
                        f"    _r = {rg(a)} * {rhs}",
                        "    if isinstance(_r, int):",
                        f"        _r &= {_MASK64}",
                        f"        if _r & {_SIGN64}:",
                        f"            _r -= {1 << 64}",
                        f"    {wr(d)} = _r",
                    ]
                pend += costs.CYCLES_MUL
            elif op == Opcode.SDIV:
                lines += [
                    f"    _a = {rg(a)}",
                    f"    _b = {rg(b)}",
                    "    if _b == 0:",
                ]
                emit_error_sync(k)
                lines.append(f"        raise VMError('division by zero', {ip})")
                if tier >= 2:
                    # specialized trace: for non-negative operands (the
                    # overwhelmingly common case: quantities, prices,
                    # scaled decimals) floor division IS truncation, so
                    # the abs/sign dance is outlined to the cold arm
                    lines += [
                        "    if _a >= 0 and _b > 0:",
                        f"        {wr(d)} = _a // _b",
                        "    else:",
                        "        _q = abs(_a) // abs(_b)",
                        f"        {wr(d)} = -_q if (_a < 0) != (_b < 0)"
                        " else _q",
                    ]
                else:
                    lines += [
                        "    _q = abs(_a) // abs(_b)",
                        f"    {wr(d)} = -_q if (_a < 0) != (_b < 0) else _q",
                    ]
                pend += costs.CYCLES_DIV
            elif op == Opcode.SREM:
                lines += [
                    f"    _b = {rg(b)}",
                    "    if _b == 0:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('remainder by zero', {ip})",
                    f"    _a = {rg(a)}",
                ]
                if tier >= 2:
                    # same non-negative fast path; the remainder is built
                    # from the same quotient expression as the cold arm so
                    # float operands stay bit-identical
                    lines += [
                        "    if _a >= 0 and _b > 0:",
                        f"        {wr(d)} = _a - _b * (_a // _b)",
                        "    else:",
                        "        _q = abs(_a) // abs(_b)",
                        "        if (_a < 0) != (_b < 0):",
                        "            _q = -_q",
                        f"        {wr(d)} = _a - _b * _q",
                    ]
                else:
                    lines += [
                        "    _q = abs(_a) // abs(_b)",
                        "    if (_a < 0) != (_b < 0):",
                        "        _q = -_q",
                        f"    {wr(d)} = _a - _b * _q",
                    ]
                pend += costs.CYCLES_DIV
            elif op == Opcode.FDIV:
                lines += [
                    f"    _b = {rg(b)}",
                    "    if _b == 0:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('fdiv by zero', {ip})",
                    f"    {wr(d)} = {rg(a)} / _b",
                ]
                pend += costs.CYCLES_DIV
            elif op == Opcode.CVTIF:
                lines.append(f"    {wr(d)} = float({rg(a)})")
                pend += 1
            elif op == Opcode.CVTFI:
                lines.append(f"    {wr(d)} = int({rg(a)})")
                pend += 1
            elif op == Opcode.CRC32:
                # int operands (the overwhelmingly common case: hash keys)
                # run the 64-bit mix inline; anything else falls back to
                # crc32_mix, which hashes floats by IEEE-754 bit pattern
                lines += [
                    f"    _a = {rg(a)}",
                    f"    _b = {rg(b)}",
                    "    if _a.__class__ is int and _b.__class__ is int:",
                    f"        _z = ((_a & {_MASK64})"
                    f" ^ ((_b & {_MASK64}) * {0x9E3779B97F4A7C15}))"
                    f" & {_MASK64}",
                    "        _z ^= _z >> 29",
                    f"        _z = (_z * {0xBF58476D1CE4E5B9}) & {_MASK64}",
                    f"        {wr(d)} = _z ^ (_z >> 32)",
                    "    else:",
                    f"        {wr(d)} = crc32_mix(_a, _b)",
                ]
                pend += costs.CYCLES_CRC32
            elif op == Opcode.SELECT:
                rt, rf = b
                lines.append(
                    f"    {wr(d)} = {rg(rt)} if {rg(a)} else {rg(rf)}"
                )
                pend += 1
            elif op == Opcode.MIN or op == Opcode.MAX:
                sym = "<=" if op == Opcode.MIN else ">="
                lines += [
                    f"    _a = {rg(a)}",
                    f"    _b = {rg(b)}",
                    f"    {wr(d)} = _a if _a {sym} _b else _b",
                ]
                pend += 1
            elif op == Opcode.LOAD and tier >= 2:
                # tier-2 load: assignment expressions fuse the address,
                # line, and set lookups into the guards, and the L1-hit
                # latency is folded into the path-static cycles (``pend``)
                # — the all-hits fast path retires in three statements.
                # ``_mln`` memoizes the line of the *previous* memory op:
                # that line is by construction the MRU entry of its set
                # (every arm below ends with the accessed line at MRU
                # position), so a repeat access to it is a guaranteed
                # L1 MRU hit and skips the whole set lookup — one shift
                # and one compare.  The hit-not-MRU arm inlines
                # CacheLevel.access's LRU move-to-front; only true L1
                # misses call out, charging the latency *difference*
                # against the folded constant.
                flags["mem"] = True
                addr = f"{rg(a)} + {b}" if b else rg(a)
                lines.append(f"    if (_x := {addr}) & 7 or _x < 8:")
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('unaligned or null load"
                    f" at %#x' % _x, {ip})",
                    "    try:",
                    f"        {wr(d)} = words[_x >> 3]",
                    "    except IndexError:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('load out of bounds"
                    f" at %#x' % _x, {ip}) from None",
                    "    if (_ln := _x >> _lb) != _mln:",
                    "        _mln = _ln",
                    "        if not (_tg := _l1s[_ln & _l1m])"
                    " or _tg[0] != _ln:",
                    "            if _ln in _tg:",
                    "                _tg.remove(_ln)",
                    "                _tg.insert(0, _ln)",
                    "            else:",
                    "                _c = _acc(_x)",
                    f"                cy += _c - {costs.LAT_L1}",
                ]
                if mode == "l1":
                    lines.append(f"                if _c > {costs.LAT_L1}:")
                    lines.append("                    _mi += 1")
                pend += costs.LAT_L1
                loads_done += 1
            elif op == Opcode.LOAD:
                flags["mem"] = True
                addr = f"{rg(a)} + {b}" if b else rg(a)
                lines += [
                    f"    _x = {addr}",
                    "    if _x & 7 or _x < 8:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('unaligned or null load"
                    f" at %#x' % _x, {ip})",
                    "    try:",
                    f"        {wr(d)} = words[_x >> 3]",
                    "    except IndexError:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('load out of bounds"
                    f" at %#x' % _x, {ip}) from None",
                    "    _ln = _x >> _lb",
                    "    _tg = _l1s[_ln & _l1m]",
                    "    if _tg and _tg[0] == _ln:",
                    f"        cy += {costs.LAT_L1}",
                    "    else:",
                    "        _c = _acc(_x)",
                    "        cy += _c",
                ]
                if mode == "l1":
                    lines.append(f"        if _c > {costs.LAT_L1}:")
                    lines.append("            _mi += 1")
                loads_done += 1
            elif op == Opcode.STORE and tier >= 2:
                # tier-2 store: same fusion and same-line memoization as
                # the tier-2 load (store latency was always path-static),
                # same inline LRU move-to-front on the hit-not-MRU arm
                flags["mem"] = True
                addr = f"{rg(d)} + {b}" if b else rg(d)
                lines.append(f"    if (_x := {addr}) & 7 or _x < 8:")
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('unaligned or null store"
                    f" at %#x' % _x, {ip})",
                    "    try:",
                    f"        words[_x >> 3] = {rg(a)}",
                    "    except IndexError:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('store out of bounds"
                    f" at %#x' % _x, {ip}) from None",
                    "    if (_ln := _x >> _lb) != _mln:",
                    "        _mln = _ln",
                    "        if not (_tg := _l1s[_ln & _l1m])"
                    " or _tg[0] != _ln:",
                    "            if _ln in _tg:",
                    "                _tg.remove(_ln)",
                    "                _tg.insert(0, _ln)",
                    "            else:",
                    "                _acc(_x)",
                ]
                pend += costs.CYCLES_STORE
                stores_done += 1
            elif op == Opcode.STORE:
                # STORE encodes (op, base_reg, src_reg, imm)
                flags["mem"] = True
                addr = f"{rg(d)} + {b}" if b else rg(d)
                lines += [
                    f"    _x = {addr}",
                    "    if _x & 7 or _x < 8:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('unaligned or null store"
                    f" at %#x' % _x, {ip})",
                    "    try:",
                    f"        words[_x >> 3] = {rg(a)}",
                    "    except IndexError:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('store out of bounds"
                    f" at %#x' % _x, {ip}) from None",
                    "    _ln = _x >> _lb",
                    "    _tg = _l1s[_ln & _l1m]",
                    "    if not _tg or _tg[0] != _ln:",
                    "        _acc(_x)",
                ]
                pend += costs.CYCLES_STORE
                stores_done += 1

            # -- control flow ----------------------------------------------
            elif op == Opcode.JMP:
                if d > ip:
                    # folded forward jump: control stays inside the trace,
                    # only the branch cycle is charged
                    pend += costs.CYCLES_BRANCH
                elif d == start:
                    if deferred:
                        eidx = emit_edge_acc(k, costs.CYCLES_BRANCH, k)
                    else:
                        emit_sync(k, costs.CYCLES_BRANCH, k)
                        eidx = -1
                    emit_loop_edge("    ", eidx)
                else:
                    sub = try_inline(
                        d, k, pend + costs.CYCLES_BRANCH,
                        loads_done, stores_done, branches_done, path, depth,
                    )
                    if sub is not None:
                        lines.extend(sub)
                    else:
                        emit_sync(k, costs.CYCLES_BRANCH, k)
                        lines.append(f"    return {d}")
            elif (op == Opcode.BRZ or op == Opcode.BRNZ) and deferred:
                # Tier-2: the 2-bit counter lives in a local (_h{ip},
                # loaded once at entry, written back only on change at
                # exits), mispredicts accumulate in _pm, and the retired
                # branch *count* is path-static — it folds into sync/edge
                # constants instead of a per-branch increment.  The
                # predictor update is split per arm so the condition is
                # tested exactly once, and the profile's ``bias`` snapshot
                # puts a zero-work fast path on the predicted arm: a
                # branch that goes its predicted way on a saturated
                # counter needs no update at all (the counter stays put
                # and the predicted cycle is already folded into
                # ``pend``).  The guard re-checks the live counter, so a
                # drifted snapshot costs speed, never exactness.  The
                # threshold is the prediction boundary (>= 2 means
                # predicted taken), not an exact saturation value.
                cond = "==" if op == Opcode.BRZ else "!="
                branch_ips.add(ip)
                h = f"_h{ip}"
                branches_done += 1
                b_bias = bias.get(ip) if bias else None
                miss_cd = ["_cd -= 1"] if mode == "brmiss" else []
                lines.append(f"    if {rg(d)} {cond} 0:")
                # taken arm: mispredict iff the pre-update counter < 2;
                # update saturates upward at 3
                if b_bias is not None and b_bias >= 2:
                    lines += [
                        f"        if {h} != 3:",
                        f"            if {h} < 2:",
                        "                _pm += 1",
                        f"                cy += {costs.CYCLES_BRANCH_MISS}",
                        *(f"                {s}" for s in miss_cd),
                        f"            {h} += 1",
                    ]
                else:
                    lines += [
                        f"        _c = {h}",
                        "        if _c < 3:",
                        f"            {h} = _c + 1",
                        "        if _c < 2:",
                        "            _pm += 1",
                        f"            cy += {costs.CYCLES_BRANCH_MISS}",
                        *(f"            {s}" for s in miss_cd),
                    ]
                arm = "        "
                if a == start:
                    eidx = emit_edge_acc(k, costs.CYCLES_BRANCH, k, arm)
                    emit_loop_edge(arm, eidx)
                else:
                    sub = try_inline(
                        a, k, pend + costs.CYCLES_BRANCH, loads_done,
                        stores_done, branches_done, path, depth,
                    )
                    if sub is not None:
                        lines.extend("    " + ln for ln in sub)
                    else:
                        emit_sync(k, costs.CYCLES_BRANCH, k, indent=arm)
                        lines.append(f"{arm}return {a}")
                # not-taken arm: mispredict iff the pre-update counter
                # >= 2; update saturates downward at 0
                lines.append("    else:")
                if b_bias is not None and b_bias < 2:
                    lines += [
                        f"        if {h} != 0:",
                        f"            if {h} >= 2:",
                        "                _pm += 1",
                        f"                cy += {costs.CYCLES_BRANCH_MISS}",
                        *(f"                {s}" for s in miss_cd),
                        f"            {h} -= 1",
                    ]
                else:
                    lines += [
                        f"        _c = {h}",
                        "        if _c > 0:",
                        f"            {h} = _c - 1",
                        "        if _c >= 2:",
                        "            _pm += 1",
                        f"            cy += {costs.CYCLES_BRANCH_MISS}",
                        *(f"            {s}" for s in miss_cd),
                    ]
                pend += costs.CYCLES_BRANCH
            elif op == Opcode.BRZ or op == Opcode.BRNZ:
                # side exit: the taken arm leaves the trace (or inlines
                # its continuation), the fall-through arm keeps executing
                cond = "==" if op == Opcode.BRZ else "!="
                lines += [
                    f"    _tk = {rg(d)} {cond} 0",
                    "    predictor.branches += 1",
                    f"    _cnt = predictor.counters.get({ip}, 1)",
                    "    if _tk:",
                    "        if _cnt < 3:",
                    f"            predictor.counters[{ip}] = _cnt + 1",
                    "    else:",
                    "        if _cnt > 0:",
                    f"            predictor.counters[{ip}] = _cnt - 1",
                    "    if (_cnt >= 2) != _tk:",
                    "        predictor.mispredicts += 1",
                    f"        _bc = "
                    f"{costs.CYCLES_BRANCH + costs.CYCLES_BRANCH_MISS}",
                ]
                if mode == "brmiss":
                    lines.append("        m._countdown -= 1")
                lines += [
                    "    else:",
                    f"        _bc = {costs.CYCLES_BRANCH}",
                    "    if _tk:",
                ]
                if a == start:
                    emit_sync(k, "_bc", k, indent="        ")
                    emit_loop_edge("        ")
                else:
                    sub = try_inline(
                        a, k, pend, loads_done, stores_done, branches_done,
                        path, depth,
                    )
                    if sub is not None:
                        lines.append("        cy += _bc")
                        lines.extend("    " + ln for ln in sub)
                    else:
                        emit_sync(k, "_bc", k, indent="        ")
                        lines.append(f"        return {a}")
                lines.append("    cy += _bc")
            elif op == Opcode.CALL:
                lines += [
                    f"    m.call_stack.append({ip + 1})",
                    "    if len(m.call_stack) > 256:",
                ]
                emit_error_sync(k, extra=costs.CYCLES_CALL)
                lines.append(
                    f"        raise VMError('call stack overflow', {ip})"
                )
                emit_sync(k, costs.CYCLES_CALL, k)
                lines.append(f"    return {d}")
            elif op == Opcode.RET:
                lines.append("    _rt = m.call_stack.pop()")
                emit_sync(k, costs.CYCLES_RET, k)
                lines.append("    return _rt")
            elif op == Opcode.KCALL:
                # the kernel instruction itself is free and does not tick
                # the instruction-event countdown (it `continue`s past
                # that code in the interpreter); the kernel accounts for
                # its own work
                emit_sync(k, 0, k - 1)
                lines += [
                    "    if m.kernel is None:",
                    f"        raise VMError('kernel call"
                    f" without a kernel', {ip})",
                    f"    m.kernel.call(m, {d})",
                    f"    return {ip + 1}",
                ]
            elif op == Opcode.HALT:
                # like KCALL, HALT retires without charging cycles or
                # ticking the countdown
                emit_sync(k, 0, k - 1)
                lines += [
                    "    m.call_stack.pop()",
                    "    return -1",
                ]

        if fall is not None:
            # trace ended at the size cap, an untranslatable instruction,
            # or the end of the code image: hand the continuation ip back
            # to the driver (a chained continuation block, or the
            # interpreter)
            k_end = k0 + len(items)
            emit_sync(k_end, 0, k_end)
            lines.append(f"    return {fall}")
            fallthroughs.append(fall)
        return lines

    root_lines = emit_seq(root_items, root_fall, 0, 0, 0, 0, 0, {start}, 0)
    lines: list[str] = []
    if has_dyn and not defer_cy:
        # inside the function-level loop when one exists, so a back edge
        # resets the dynamic accumulators for the next iteration
        # (``defer_cy`` loops instead initialize ``cy`` once in the head
        # and let it accumulate across iterations)
        lines.append("    cy = 0")
    if track_l1:
        lines.append("    _mi = 0")
    lines += root_lines

    # expand placeholders now that the written set, worst-case path
    # length, and (slim) edge-path table are final
    written = sorted(written_regs)
    recon: list[str] = []
    if slim:
        # flush-site reconstruction: every deferred total is a linear
        # combination of the per-path iteration counters
        def _recon_expr(field: str) -> str:
            terms = [
                f"{e[field]} * _e{i}" if e[field] != 1 else f"_e{i}"
                for i, e in enumerate(edges)
                if e[field]
            ]
            return " + ".join(terms) if terms else "0"

        recon = [
            f"_ins = {_recon_expr('k')}",
            f"_ld = {_recon_expr('ld')}",
            f"_st = {_recon_expr('st')}",
            f"_cyt = {_recon_expr('cy')}",
            f"_pb = {_recon_expr('pb')}",
        ]
    if deferred:
        budget_cond = f"_ib + _ins + {max_k} > _maxi"
        le_cond = f"_cd <= {bound} or {budget_cond}" if mode else budget_cond
        # the uniform deopt flush: everything the accumulators deferred
        # goes back to machine state before the driver regains control
        flush = list(recon)
        flush += [f"regs[{i}] = r{i}" for i in written]
        flush += [
            "state.instructions += _ins",
            "state.cycles += _cyt + cy" if defer_cy and has_dyn
            else "state.cycles += _cyt",
            "state.loads += _ld",
            "state.stores += _st",
            "caches.accesses += _ld + _st",
            "predictor.branches += _pb",
            "predictor.mispredicts += _pm",
        ]
        flush.extend(
            f"if _h{bip} != _hs{bip}: _pc[{bip}] = _h{bip}"
            for bip in sorted(branch_ips)
        )
        if mode:
            flush.append("m._countdown = _cd")
    elif mode:
        le_cond = (
            f"m._countdown <= {bound}"
            f" or state.instructions + {max_k} > _maxi"
        )
    else:
        le_cond = f"state.instructions + {max_k} > _maxi"
    expanded: list[str] = []
    for ln in lines:
        # inlined sub-traces get re-indented wholesale, so a placeholder
        # line is (outer indent) + marker + (frame-local indent), with
        # the site's path-static branch count (WB) or edge-path index
        # (LE) carried behind a second NUL
        if "\x00WB" in ln:
            indent, _, bd = ln.replace("\x00WB", "").partition("\x00")
            expanded.extend(f"{indent}regs[{i}] = r{i}" for i in written)
            if deferred:
                expanded.extend(f"{indent}{r}" for r in recon)
                pb = f"_pb + {bd}" if bd not in ("", "0") else "_pb"
                expanded.append(f"{indent}predictor.branches += {pb}")
                expanded.append(f"{indent}predictor.mispredicts += _pm")
                expanded.extend(
                    f"{indent}if _h{bip} != _hs{bip}: _pc[{bip}] = _h{bip}"
                    for bip in sorted(branch_ips)
                )
        elif "\x00LE" in ln:
            indent, _, eidx = ln.replace("\x00LE", "").partition("\x00")
            if deferred:
                if guard_hook:
                    expanded.append(f"{indent}if m._tier_guard:")
                    expanded.extend(f"{indent}    {f}" for f in flush)
                    expanded.append(f"{indent}    m._tier_deopt({start})")
                    expanded.append(f"{indent}    return {start}")
                if slim:
                    # fused decrement-and-test of the instruction budget:
                    # _bl holds the iterations' worth of headroom left
                    ek = edges[int(eidx)]["k"]
                    expanded.append(
                        f"{indent}if (_bl := _bl - {ek}) < 0:"
                    )
                else:
                    expanded.append(f"{indent}if {le_cond}:")
                expanded.extend(f"{indent}    {f}" for f in flush)
                expanded.append(f"{indent}    return {start}")
                expanded.append(f"{indent}continue")
            else:
                expanded.extend([
                    f"{indent}if {le_cond}:",
                    f"{indent}    return {start}",
                    f"{indent}continue",
                ])
        else:
            expanded.append(ln)

    head: list[str] = [
        f"def _b{start}{suffix}(m, regs, words, state, caches, predictor):"
    ]
    if flags["mem"]:
        # The L1 MRU-hit test is inlined at every memory op; anything else
        # (LRU move, miss, allocation) calls back into the hierarchy so
        # cache state stays bit-identical to the interpreter's.
        head += [
            "    _l1 = caches.l1",
            "    _l1s = _l1.sets",
            "    _l1m = _l1.set_mask",
            "    _lb = _l1.line_bits",
            "    _acc = caches.access_uncounted",
        ]
    if flags["loop"]:
        head.append("    _maxi = state.max_instructions")
    if tier >= 2 and flags["mem"]:
        # same-line memo: no real line index is negative, so -1 forces
        # the first memory op down the full check
        head.append("    _mln = -1")
    # load every used register up front: exits flush the full written set
    # unconditionally, so all the locals must be bound from the start
    head.extend(f"    r{i} = regs[{i}]" for i in sorted(used_regs))
    if deferred:
        if branch_ips:
            head.append("    _pc = predictor.counters")
            head.append("    _pg = _pc.get")
            for bip in sorted(branch_ips):
                head.append(f"    _h{bip} = _pg({bip}, 1)")
                head.append(f"    _hs{bip} = _h{bip}")
        head.append("    _pm = 0")
        if slim:
            # the deferred totals live in the per-path iteration
            # counters; _bl is the instruction budget's headroom,
            # pre-shifted by the worst-case path so the edge test is a
            # single fused decrement-and-compare
            head.extend(f"    _e{i} = 0" for i in range(len(edges)))
            head.append(
                f"    _bl = _maxi - state.instructions - {max_k}"
            )
        else:
            head += [
                "    _pb = 0",
                "    _ins = 0",
                "    _cyt = 0",
                "    _ld = 0",
                "    _st = 0",
                "    _ib = state.instructions",
            ]
        if defer_cy and has_dyn:
            head.append("    cy = 0")
        if mode:
            head.append("    _cd = m._countdown")
    if flags["loop"]:
        body = ["    while True:"] + ["    " + ln for ln in expanded]
    else:
        body = expanded
    return "\n".join(head + body) + "\n", max_k, bound, fallthroughs


def _event_bound(instrs, mode) -> int:
    """Worst-case countdown events one execution of the block can cost."""
    if mode == "instr":
        return len(instrs)
    if mode == "cycles":
        return sum(_WORST_CYCLES.get(ins[0], 1) for _, ins in instrs)
    if mode == "loads" or mode == "l1":
        return sum(1 for _, ins in instrs if ins[0] == Opcode.LOAD)
    if mode == "brmiss":
        return sum(
            1 for _, ins in instrs
            if ins[0] == Opcode.BRZ or ins[0] == Opcode.BRNZ
        )
    return 0
