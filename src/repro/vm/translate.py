"""Template translation: compile basic blocks into host-Python functions.

This is the fast half of the machine's dual-mode engine, shaped like the
basic-block translators of fast cycle-accounting simulators (QEMU's TCG,
gem5 fast-forward): decode the guest :class:`~repro.vm.isa.Program` into
superblocks (single-entry multi-exit traces that follow conditional
fall-through and fold forward jumps), then ``exec``-compile every block
into one specialized Python function.  Inside a block

- opcode dispatch is gone (each instruction became a dedicated statement),
- register/array accesses are inlined with constant indices,
- the static cycle cost and instruction count are folded into per-block
  constants applied once at block exit,

while everything *dynamic* keeps exact per-access accounting: loads and
stores still walk the cache hierarchy, conditional branches still train
the 2-bit predictor, and error paths re-materialize the precise
``MachineState`` the interpreter would have produced (same message, same
ip, same counter values).

Sampling exactness is preserved by a conservative *event bound* computed
per block and per PMU event: the worst-case number of countdown events
the block can generate.  The driver only enters a block when the live
countdown strictly exceeds that bound, so a sample can never fall due
mid-block; the countdown is then paid in one block-sized chunk.  When the
bound check fails, the machine falls back to the interpreter for the rest
of the sampling window (see ``Machine._run_fast``), which keeps sample
streams bit-identical to pure interpretation.

Translation gets more aggressive where the countdown allows it: traces
rooted at loop heads inline their side-exit continuations into superblock
*trees* (bounded by ``_TREE_BUDGET`` and ``_TREE_DEPTH``), and a branch
back to the trace's own head closes the loop inside the compiled function
— after re-checking the instruction budget (and, armed, the countdown)
exactly as the driver would — so hot loops run without returning to the
dispatch loop at all.  With the PMU unarmed there is no countdown to
protect and trees grow to the instruction budget; armed, tree growth is
additionally capped by ``bound_cap`` — a worst-case-event allowance
derived from the sampling period (``period // 8``) — so the admission
check still passes for almost the whole sampling window and coarse
periods (like the serve path's always-on profiling) keep near-unarmed
speed.

Translations are cached on the Program object, keyed by the sampled event
and the armed bound cap (the countdown bookkeeping is specialized per
event), so the up-to-four morsel workers of one query share a single
translation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VMError
from repro.vm import costs
from repro.vm.isa import Opcode, Program, TERMINATOR_OPS, block_leaders
from repro.vm.pmu import Event

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63

# countdown-bookkeeping mode per sampled event (None = PMU off)
_MODES = {
    None: "",
    Event.INSTRUCTIONS: "instr",
    Event.CYCLES: "cycles",
    Event.LOADS: "loads",
    Event.L1_MISS: "l1",
    Event.BRANCH_MISS: "brmiss",
}

# Superblock-tree growth limits: total emitted instructions per block
# function and inlining depth of side-exit continuations.  Armed
# translations additionally cap the tree's worst-case event bound at
# ``bound_cap`` so it stays small against the sampling countdown.
_TREE_BUDGET = 1536
_TREE_DEPTH = 8

# worst-case cycle cost per opcode, for the CYCLES event bound
_WORST_CYCLES = {
    Opcode.LOAD: costs.LAT_MEM,
    Opcode.STORE: costs.CYCLES_STORE,
    Opcode.MUL: costs.CYCLES_MUL,
    Opcode.MULI: costs.CYCLES_MUL,
    Opcode.SDIV: costs.CYCLES_DIV,
    Opcode.SREM: costs.CYCLES_DIV,
    Opcode.FDIV: costs.CYCLES_DIV,
    Opcode.CRC32: costs.CYCLES_CRC32,
    Opcode.JMP: costs.CYCLES_BRANCH,
    Opcode.BRZ: costs.CYCLES_BRANCH + costs.CYCLES_BRANCH_MISS,
    Opcode.BRNZ: costs.CYCLES_BRANCH + costs.CYCLES_BRANCH_MISS,
    Opcode.CALL: costs.CYCLES_CALL,
    Opcode.RET: costs.CYCLES_RET,
    Opcode.KCALL: 0,  # the kernel accounts for itself via advance_external
    Opcode.HALT: 0,   # returns before any cost is charged
}

_SIMPLE_BINOPS = {
    Opcode.ADD: "+", Opcode.SUB: "-", Opcode.AND: "&",
    Opcode.OR: "|", Opcode.XOR: "^",
}
_CMP_OPS = {
    Opcode.CMPEQ: "==", Opcode.CMPNE: "!=", Opcode.CMPLT: "<",
    Opcode.CMPLE: "<=", Opcode.CMPGT: ">", Opcode.CMPGE: ">=",
}
_CMP_IMM_OPS = {
    Opcode.CMPEQI: "==", Opcode.CMPNEI: "!=", Opcode.CMPLTI: "<",
    Opcode.CMPLEI: "<=", Opcode.CMPGTI: ">", Opcode.CMPGEI: ">=",
}

_KNOWN_OPS = (
    set(_SIMPLE_BINOPS) | set(_CMP_OPS) | set(_CMP_IMM_OPS) | set(_WORST_CYCLES)
    | {
        Opcode.NOP, Opcode.MOV, Opcode.MOVI, Opcode.ADDI, Opcode.ANDI,
        Opcode.SHLI, Opcode.SHRI, Opcode.XORI, Opcode.SHL, Opcode.SHR,
        Opcode.ROTR, Opcode.CVTIF, Opcode.CVTFI, Opcode.SELECT,
        Opcode.MIN, Opcode.MAX,
    }
)


@dataclass
class Translation:
    """All compiled blocks of one program for one PMU event mode.

    ``blocks`` maps a leader ip to ``(fn, n_instructions, event_bound,
    fallback)``; ``fn(machine, regs, words, state, caches, predictor)``
    executes the block and returns the next ip (negative = the run is
    complete).  ``fallback`` is ``None``, or a linear
    ``(fn, n_instructions, event_bound)`` variant of the same leader with
    a much smaller bound: when the live countdown is too low to admit an
    armed superblock tree, the driver runs the linear variant instead of
    dropping all the way to the interpreter, so only the last few hundred
    events before each sample interpret.
    """

    blocks: dict[int, tuple]
    event: Event | None
    code_len: int
    code_id: int
    source: str  # kept for debugging / tests

    def stale_for(self, program: Program) -> bool:
        return (
            self.code_len != len(program.code)
            or self.code_id != id(program.code)
        )


def translation_for(
    program: Program, event: Event | None, bound_cap: int = 0
) -> Translation:
    """Return the (cached) translation of ``program`` for ``event``.

    ``bound_cap`` is the armed tree-growth allowance in worst-case
    countdown events (0 disables armed trees); unarmed translations
    ignore it."""
    cache = getattr(program, "_vm_translations", None)
    if cache is None:
        cache = {}
        program._vm_translations = cache
    key = (event.name if event is not None else None, bound_cap)
    entry = cache.get(key)
    if entry is None or entry.stale_for(program):
        entry = translate_program(program, event, bound_cap)
        cache[key] = entry
    return entry


def translate_program(
    program: Program, event: Event | None, bound_cap: int = 0
) -> Translation:
    """Decode ``program`` into basic blocks and compile each one.

    Beyond the classic leaders, the worklist also chains *continuation*
    blocks: when a block hits the size cap (or stops before an
    untranslatable instruction) mid-straight-line-code, its fall-through
    address gets a block of its own, so long arithmetic runs never drop
    into the interpreter.
    """
    mode = _MODES[event]
    # armed translations cap trace length so worst-case event bounds stay
    # well under the countdown; unarmed ones have no countdown to protect
    cap = (
        costs.FAST_VM_MAX_BLOCK
        if event is not None
        else costs.FAST_VM_MAX_BLOCK_PLAIN
    )
    code = program.code
    leaders = block_leaders(program)
    chunks: list[str] = []
    metas: list[tuple[int, int, int, tuple | None]] = []
    done: set[int] = set()
    queue = sorted(leaders)
    while queue:
        start = queue.pop()
        if start in done or not 0 <= start < len(code):
            continue
        done.add(start)
        emitted = _emit_block(code, start, cap, mode, bound_cap)
        if emitted is None:
            continue
        src, n_instr, bound, fallthroughs = emitted
        chunks.append(src)
        fb_meta = None
        if mode and bound_cap:
            # the armed tree's bound keeps it out of the last stretch of
            # every sampling window; give the driver a linear variant
            # with a tight bound to run there instead of interpreting
            linear = _emit_block(code, start, cap, mode, 0, suffix="f")
            if linear is not None and linear[2] < bound:
                lin_src, lin_n, lin_bound, lin_falls = linear
                chunks.append(lin_src)
                fb_meta = (lin_n, lin_bound)
                fallthroughs = list(fallthroughs) + list(lin_falls)
        metas.append((start, n_instr, bound, fb_meta))
        for ft in fallthroughs:
            if ft not in done:
                queue.append(ft)
    source = "\n".join(chunks)
    namespace: dict = {"VMError": VMError, "crc32_mix": _crc32_mix()}
    exec(compile(source, f"<fastvm:{mode or 'plain'}>", "exec"), namespace)
    blocks = {
        start: (
            namespace[f"_b{start}"], n_instr, bound,
            (
                (namespace[f"_b{start}f"], fb_meta[0], fb_meta[1])
                if fb_meta is not None
                else None
            ),
        )
        for start, n_instr, bound, fb_meta in metas
    }
    return Translation(
        blocks=blocks,
        event=event,
        code_len=len(code),
        code_id=id(code),
        source=source,
    )


def _crc32_mix():
    # machine.py imports this module lazily, so the reverse import here
    # cannot form a cycle at module-load time
    from repro.vm.machine import crc32_mix

    return crc32_mix


def _translatable(ins: tuple) -> bool:
    """True when the instruction's operands fit the templates below.

    Anything odd — an unresolved label in a branch slot, a negative
    target, a non-numeric immediate — is left to the interpreter, which
    either handles it or produces the canonical error for it.
    """
    op = ins[0]
    if op not in _KNOWN_OPS:
        return False
    if op == Opcode.JMP or op == Opcode.CALL:
        return isinstance(ins[1], int) and ins[1] >= 0
    if op == Opcode.BRZ or op == Opcode.BRNZ:
        return isinstance(ins[2], int) and ins[2] >= 0
    if op in (Opcode.LOAD, Opcode.STORE, Opcode.SHLI, Opcode.SHRI):
        return isinstance(ins[3], int)
    if op == Opcode.MOVI:
        return isinstance(ins[2], (int, float))
    if op == Opcode.SELECT:
        return isinstance(ins[3], tuple) and len(ins[3]) == 2
    if op in _CMP_IMM_OPS or op in (
        Opcode.ADDI, Opcode.MULI, Opcode.ANDI, Opcode.XORI
    ):
        return isinstance(ins[3], (int, float))
    return True


def _decode_trace(code: list[tuple], start: int, cap: int):
    """Follow the expected-hot path from ``start`` (superblock decoding).

    Returns ``(items, fallthrough)`` with items in retire order.  A
    conditional branch does not end the trace: decoding continues on the
    not-taken (fall-through) arm and the taken arm becomes a *side exit*
    in the emitted code — loop bodies laid out with backward taken edges
    therefore translate into a single block per iteration.  A strictly
    forward JMP is folded into the trace (it only costs cycles).  The
    trace ends at CALL/RET/KCALL/HALT, a backward jump, an untranslatable
    instruction, or the size cap; for the latter three, ``fallthrough``
    is the next ip to execute (the caller chains a continuation there).
    """
    items: list[tuple[int, tuple]] = []
    ip = start
    limit = len(code)
    while 0 <= ip < limit and len(items) < cap:
        ins = code[ip]
        op = ins[0]
        if not _translatable(ins):
            # executing it falls back to the interpreter, which raises
            # the exact "illegal opcode" error if it must
            break
        items.append((ip, ins))
        if op == Opcode.JMP:
            if ins[1] > ip:
                ip = ins[1]
                continue
            return items, None
        if op == Opcode.BRZ or op == Opcode.BRNZ:
            ip += 1
            continue
        if op in TERMINATOR_OPS:  # CALL, RET, KCALL, HALT
            return items, None
        ip += 1
    return items, ip


def _emit_block(code, start, cap, mode, bound_cap=0, suffix=""):
    """Emit the source of one block function; None if nothing translatable.

    Returns ``(source, max_path_instructions, event_bound,
    fallthrough_ips)``; the fallthrough ips are continuation addresses
    where some path of the block hands control back without a terminator
    (size cap or untranslatable instruction), so :func:`translate_program`
    can chain continuation blocks there.

    Blocks rooted at loop heads may grow *superblock trees*: the
    continuation of a side exit is decoded and inlined into the taken arm
    (up to a total budget), so hot paths that zig-zag through taken
    branches — and loop cycles that cross several trace heads before
    branching back to this block's start — run inside one Python function
    instead of bouncing through the driver.  Unarmed blocks grow to the
    instruction budget; armed ones stop once the tree's worst-case event
    bound would exceed ``bound_cap``, which keeps the driver's admission
    check passing for almost the whole sampling window.
    """
    root_items, root_fall = _decode_trace(code, start, cap)
    if not root_items:
        return None

    # Trees are grown only at *loop heads* — roots whose own trace
    # branches back to start.  Hot cycles always contain a loop head, so
    # the closed loop forms there, while cold leaders stay linear and the
    # generated source stays compact enough to compile quickly.
    is_loop_head = any(
        (ins[0] == Opcode.JMP and ins[1] == start)
        or (
            (ins[0] == Opcode.BRZ or ins[0] == Opcode.BRNZ)
            and ins[2] == start
        )
        for _, ins in root_items
    )
    bound = _event_bound(root_items, mode)
    tree = is_loop_head and (mode == "" or bound < bound_cap)
    if tree:
        # inlined continuations can bring loads/branches anywhere, so the
        # dynamic-cycles accumulator is unconditional
        has_dyn = True
    else:
        has_dyn = any(
            ins[0] == Opcode.LOAD
            or ins[0] == Opcode.BRZ
            or ins[0] == Opcode.BRNZ
            for _, ins in root_items
        )
    # armed trees can inline loads into a load-free root, so the L1-miss
    # accumulator must exist whenever an arm *could* bring one
    track_l1 = mode == "l1" and (
        tree or any(ins[0] == Opcode.LOAD for _, ins in root_items)
    )

    # Registers are cached in Python locals (``r5`` for ``regs[5]``) for
    # the whole block: nothing outside the block can observe ``regs``
    # while it runs, so reads/writes stay private until an exit.  Every
    # used register is loaded up front (so early error exits can write
    # back unconditionally) and every *written* register is flushed at
    # each exit — the \x00WB placeholder marks those flush points and is
    # expanded once the full written set is known.  \x00LE marks loop
    # edges, expanded once the worst-case path length is known.
    used_regs: set[int] = set()
    written_regs: set[int] = set()
    flags = {"mem": False, "loop": False}
    fallthroughs: list[int] = []
    max_k = 0  # worst-case instructions retired on any path
    emitted = 0  # total instructions emitted (tree growth budget)

    def rg(i: int) -> str:
        used_regs.add(i)
        return f"r{i}"

    def wr(i: int) -> str:
        used_regs.add(i)
        written_regs.add(i)
        return f"r{i}"

    def try_inline(t, k, pend0, loads0, stores0, path, depth):
        """Inline the continuation at ``t`` into the current arm.

        Returns its emitted lines (at base indent), or None when trees
        are disabled, the target closes a non-root cycle, the growth
        budget/depth is exhausted, or (armed) the continuation would push
        the tree's worst-case event bound past ``bound_cap``."""
        nonlocal bound
        if (
            not tree
            or depth >= _TREE_DEPTH
            or t in path
            or emitted >= _TREE_BUDGET
        ):
            return None
        sub_items, sub_fall = _decode_trace(
            code, t, min(cap, _TREE_BUDGET - emitted)
        )
        if not sub_items:
            return None
        if mode:
            sub_bound = _event_bound(sub_items, mode)
            if bound + sub_bound > bound_cap:
                return None
            bound += sub_bound
        return emit_seq(
            sub_items, sub_fall, k, pend0, loads0, stores0,
            path | {t}, depth + 1,
        )

    def emit_seq(items, fall, k0, pend0, loads0, stores0, path, depth):
        """Emit one decoded trace; recursion happens at inlined exits.

        ``k0``/``pend0``/``loads0``/``stores0`` carry the retired-count,
        statically-known cycles, and memory-op counts accumulated on the
        path into this trace, so sync points flush absolute totals."""
        nonlocal max_k, emitted
        emitted += len(items)
        lines: list[str] = []
        pend = pend0
        loads_done = loads0
        stores_done = stores0

        def cy_expr(const: int) -> str:
            if has_dyn:
                return f"cy + {const}" if const else "cy"
            return str(const)

        def emit_error_sync(k: int, extra: int = 0) -> None:
            nonlocal max_k
            max_k = max(max_k, k)
            lines.append("\x00WB        ")
            expr = cy_expr(pend + extra)
            if expr != "0":
                lines.append(f"        state.cycles += {expr}")
            lines.append(f"        state.instructions += {k}")
            if loads_done:
                lines.append(f"        state.loads += {loads_done}")
            if stores_done:
                lines.append(f"        state.stores += {stores_done}")
            if loads_done + stores_done:
                lines.append(
                    f"        caches.accesses += {loads_done + stores_done}"
                )

        def emit_sync(
            k: int, extra, instr_events: int, indent: str = "    "
        ) -> None:
            """Sync counters and pay the countdown at an exit retiring
            ``k`` instructions; ``extra`` is the exiting instruction's
            cost — an int, or the name of a local holding a dynamic
            cost."""
            nonlocal max_k
            max_k = max(max_k, k)
            lines.append(f"\x00WB{indent}")
            if loads_done:
                lines.append(f"{indent}state.loads += {loads_done}")
            if stores_done:
                lines.append(f"{indent}state.stores += {stores_done}")
            if loads_done + stores_done:
                lines.append(
                    f"{indent}caches.accesses += {loads_done + stores_done}"
                )
            if isinstance(extra, int):
                expr = cy_expr(pend + extra)
            else:
                expr = f"{cy_expr(pend)} + {extra}"
            if mode == "cycles":
                lines.append(f"{indent}_t = {expr}")
                lines.append(f"{indent}state.cycles += _t")
                lines.append(f"{indent}state.instructions += {k}")
                lines.append(f"{indent}m._countdown -= _t")
            else:
                if expr != "0":
                    lines.append(f"{indent}state.cycles += {expr}")
                lines.append(f"{indent}state.instructions += {k}")
                if mode == "instr" and instr_events:
                    lines.append(f"{indent}m._countdown -= {instr_events}")
                elif mode == "loads" and loads_done:
                    lines.append(f"{indent}m._countdown -= {loads_done}")
                elif track_l1:
                    lines.append(f"{indent}m._countdown -= _mi")

        def emit_loop_edge(indent: str) -> None:
            """Re-run the driver's admission check, then take the back
            edge of the function-level loop (a ``continue`` jumps to the
            block start: counters were just synced, ``cy`` resets at the
            loop top)."""
            flags["loop"] = True
            lines.append(f"\x00LE{indent}")

        for index, (ip, ins) in enumerate(items):
            op = ins[0]
            k = k0 + index + 1  # instructions retired including this one
            d, a, b = ins[1], ins[2], ins[3]

            if op == Opcode.NOP:
                pend += 1
            elif op == Opcode.MOV:
                lines.append(f"    {wr(d)} = {rg(a)}")
                pend += 1
            elif op == Opcode.MOVI:
                lines.append(f"    {wr(d)} = {a!r}")
                pend += 1
            elif op in _SIMPLE_BINOPS:
                sym = _SIMPLE_BINOPS[op]
                lines.append(f"    {wr(d)} = {rg(a)} {sym} {rg(b)}")
                pend += 1
            elif op in _CMP_OPS:
                sym = _CMP_OPS[op]
                lines.append(
                    f"    {wr(d)} = 1 if {rg(a)} {sym} {rg(b)} else 0"
                )
                pend += 1
            elif op in _CMP_IMM_OPS:
                sym = _CMP_IMM_OPS[op]
                lines.append(
                    f"    {wr(d)} = 1 if {rg(a)} {sym} {b!r} else 0"
                )
                pend += 1
            elif op == Opcode.ADDI:
                lines.append(f"    {wr(d)} = {rg(a)} + {b!r}")
                pend += 1
            elif op == Opcode.ANDI:
                lines.append(f"    {wr(d)} = {rg(a)} & {b!r}")
                pend += 1
            elif op == Opcode.XORI:
                lines.append(f"    {wr(d)} = {rg(a)} ^ {b!r}")
                pend += 1
            elif op == Opcode.SHLI:
                lines.append(
                    f"    {wr(d)} = ({rg(a)} << {b & 63}) & {_MASK64}"
                )
                pend += 1
            elif op == Opcode.SHRI:
                lines.append(
                    f"    {wr(d)} = ({rg(a)} & {_MASK64}) >> {b & 63}"
                )
                pend += 1
            elif op == Opcode.SHL:
                lines.append(
                    f"    {wr(d)} = ({rg(a)} << ({rg(b)} & 63)) & {_MASK64}"
                )
                pend += 1
            elif op == Opcode.SHR:
                lines.append(
                    f"    {wr(d)} = ({rg(a)} & {_MASK64}) >> ({rg(b)} & 63)"
                )
                pend += 1
            elif op == Opcode.ROTR:
                lines += [
                    f"    _v = {rg(a)} & {_MASK64}",
                    f"    _s = {rg(b)} & 63",
                    f"    {wr(d)} = ((_v >> _s) | (_v << (64 - _s)))"
                    f" & {_MASK64}",
                ]
                pend += 1
            elif op == Opcode.MUL or op == Opcode.MULI:
                rhs = rg(b) if op == Opcode.MUL else repr(b)
                lines += [
                    f"    _r = {rg(a)} * {rhs}",
                    "    if isinstance(_r, int):",
                    f"        _r &= {_MASK64}",
                    f"        if _r & {_SIGN64}:",
                    f"            _r -= {1 << 64}",
                    f"    {wr(d)} = _r",
                ]
                pend += costs.CYCLES_MUL
            elif op == Opcode.SDIV:
                lines += [
                    f"    _a = {rg(a)}",
                    f"    _b = {rg(b)}",
                    "    if _b == 0:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('division by zero', {ip})",
                    "    _q = abs(_a) // abs(_b)",
                    f"    {wr(d)} = -_q if (_a < 0) != (_b < 0) else _q",
                ]
                pend += costs.CYCLES_DIV
            elif op == Opcode.SREM:
                lines += [
                    f"    _b = {rg(b)}",
                    "    if _b == 0:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('remainder by zero', {ip})",
                    f"    _a = {rg(a)}",
                    "    _q = abs(_a) // abs(_b)",
                    "    if (_a < 0) != (_b < 0):",
                    "        _q = -_q",
                    f"    {wr(d)} = _a - _b * _q",
                ]
                pend += costs.CYCLES_DIV
            elif op == Opcode.FDIV:
                lines += [
                    f"    _b = {rg(b)}",
                    "    if _b == 0:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('fdiv by zero', {ip})",
                    f"    {wr(d)} = {rg(a)} / _b",
                ]
                pend += costs.CYCLES_DIV
            elif op == Opcode.CVTIF:
                lines.append(f"    {wr(d)} = float({rg(a)})")
                pend += 1
            elif op == Opcode.CVTFI:
                lines.append(f"    {wr(d)} = int({rg(a)})")
                pend += 1
            elif op == Opcode.CRC32:
                # int operands (the overwhelmingly common case: hash keys)
                # run the 64-bit mix inline; anything else falls back to
                # crc32_mix, which hashes floats by IEEE-754 bit pattern
                lines += [
                    f"    _a = {rg(a)}",
                    f"    _b = {rg(b)}",
                    "    if _a.__class__ is int and _b.__class__ is int:",
                    f"        _z = ((_a & {_MASK64})"
                    f" ^ ((_b & {_MASK64}) * {0x9E3779B97F4A7C15}))"
                    f" & {_MASK64}",
                    "        _z ^= _z >> 29",
                    f"        _z = (_z * {0xBF58476D1CE4E5B9}) & {_MASK64}",
                    f"        {wr(d)} = _z ^ (_z >> 32)",
                    "    else:",
                    f"        {wr(d)} = crc32_mix(_a, _b)",
                ]
                pend += costs.CYCLES_CRC32
            elif op == Opcode.SELECT:
                rt, rf = b
                lines.append(
                    f"    {wr(d)} = {rg(rt)} if {rg(a)} else {rg(rf)}"
                )
                pend += 1
            elif op == Opcode.MIN or op == Opcode.MAX:
                sym = "<=" if op == Opcode.MIN else ">="
                lines += [
                    f"    _a = {rg(a)}",
                    f"    _b = {rg(b)}",
                    f"    {wr(d)} = _a if _a {sym} _b else _b",
                ]
                pend += 1
            elif op == Opcode.LOAD:
                flags["mem"] = True
                addr = f"{rg(a)} + {b}" if b else rg(a)
                lines += [
                    f"    _x = {addr}",
                    "    if _x & 7 or _x < 8:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('unaligned or null load"
                    f" at %#x' % _x, {ip})",
                    "    try:",
                    f"        {wr(d)} = words[_x >> 3]",
                    "    except IndexError:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('load out of bounds"
                    f" at %#x' % _x, {ip}) from None",
                    "    _ln = _x >> _lb",
                    "    _tg = _l1s[_ln & _l1m]",
                    "    if _tg and _tg[0] == _ln:",
                    f"        cy += {costs.LAT_L1}",
                    "    else:",
                    "        _c = _acc(_x)",
                    "        cy += _c",
                ]
                if mode == "l1":
                    lines.append(f"        if _c > {costs.LAT_L1}:")
                    lines.append("            _mi += 1")
                loads_done += 1
            elif op == Opcode.STORE:
                # STORE encodes (op, base_reg, src_reg, imm)
                flags["mem"] = True
                addr = f"{rg(d)} + {b}" if b else rg(d)
                lines += [
                    f"    _x = {addr}",
                    "    if _x & 7 or _x < 8:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('unaligned or null store"
                    f" at %#x' % _x, {ip})",
                    "    try:",
                    f"        words[_x >> 3] = {rg(a)}",
                    "    except IndexError:",
                ]
                emit_error_sync(k)
                lines += [
                    f"        raise VMError('store out of bounds"
                    f" at %#x' % _x, {ip}) from None",
                    "    _ln = _x >> _lb",
                    "    _tg = _l1s[_ln & _l1m]",
                    "    if not _tg or _tg[0] != _ln:",
                    "        _acc(_x)",
                ]
                pend += costs.CYCLES_STORE
                stores_done += 1

            # -- control flow ----------------------------------------------
            elif op == Opcode.JMP:
                if d > ip:
                    # folded forward jump: control stays inside the trace,
                    # only the branch cycle is charged
                    pend += costs.CYCLES_BRANCH
                elif d == start:
                    emit_sync(k, costs.CYCLES_BRANCH, k)
                    emit_loop_edge("    ")
                else:
                    sub = try_inline(
                        d, k, pend + costs.CYCLES_BRANCH,
                        loads_done, stores_done, path, depth,
                    )
                    if sub is not None:
                        lines.extend(sub)
                    else:
                        emit_sync(k, costs.CYCLES_BRANCH, k)
                        lines.append(f"    return {d}")
            elif op == Opcode.BRZ or op == Opcode.BRNZ:
                # side exit: the taken arm leaves the trace (or inlines
                # its continuation), the fall-through arm keeps executing
                cond = "==" if op == Opcode.BRZ else "!="
                lines += [
                    f"    _tk = {rg(d)} {cond} 0",
                    "    predictor.branches += 1",
                    f"    _cnt = predictor.counters.get({ip}, 1)",
                    "    if _tk:",
                    "        if _cnt < 3:",
                    f"            predictor.counters[{ip}] = _cnt + 1",
                    "    else:",
                    "        if _cnt > 0:",
                    f"            predictor.counters[{ip}] = _cnt - 1",
                    "    if (_cnt >= 2) != _tk:",
                    "        predictor.mispredicts += 1",
                    f"        _bc = "
                    f"{costs.CYCLES_BRANCH + costs.CYCLES_BRANCH_MISS}",
                ]
                if mode == "brmiss":
                    lines.append("        m._countdown -= 1")
                lines += [
                    "    else:",
                    f"        _bc = {costs.CYCLES_BRANCH}",
                    "    if _tk:",
                ]
                if a == start:
                    emit_sync(k, "_bc", k, indent="        ")
                    emit_loop_edge("        ")
                else:
                    sub = try_inline(
                        a, k, pend, loads_done, stores_done, path, depth,
                    )
                    if sub is not None:
                        lines.append("        cy += _bc")
                        lines.extend("    " + ln for ln in sub)
                    else:
                        emit_sync(k, "_bc", k, indent="        ")
                        lines.append(f"        return {a}")
                lines.append("    cy += _bc")
            elif op == Opcode.CALL:
                lines += [
                    f"    m.call_stack.append({ip + 1})",
                    "    if len(m.call_stack) > 256:",
                ]
                emit_error_sync(k, extra=costs.CYCLES_CALL)
                lines.append(
                    f"        raise VMError('call stack overflow', {ip})"
                )
                emit_sync(k, costs.CYCLES_CALL, k)
                lines.append(f"    return {d}")
            elif op == Opcode.RET:
                lines.append("    _rt = m.call_stack.pop()")
                emit_sync(k, costs.CYCLES_RET, k)
                lines.append("    return _rt")
            elif op == Opcode.KCALL:
                # the kernel instruction itself is free and does not tick
                # the instruction-event countdown (it `continue`s past
                # that code in the interpreter); the kernel accounts for
                # its own work
                emit_sync(k, 0, k - 1)
                lines += [
                    "    if m.kernel is None:",
                    f"        raise VMError('kernel call"
                    f" without a kernel', {ip})",
                    f"    m.kernel.call(m, {d})",
                    f"    return {ip + 1}",
                ]
            elif op == Opcode.HALT:
                # like KCALL, HALT retires without charging cycles or
                # ticking the countdown
                emit_sync(k, 0, k - 1)
                lines += [
                    "    m.call_stack.pop()",
                    "    return -1",
                ]

        if fall is not None:
            # trace ended at the size cap, an untranslatable instruction,
            # or the end of the code image: hand the continuation ip back
            # to the driver (a chained continuation block, or the
            # interpreter)
            k_end = k0 + len(items)
            emit_sync(k_end, 0, k_end)
            lines.append(f"    return {fall}")
            fallthroughs.append(fall)
        return lines

    root_lines = emit_seq(root_items, root_fall, 0, 0, 0, 0, {start}, 0)
    lines: list[str] = []
    if has_dyn:
        # inside the function-level loop when one exists, so a back edge
        # resets the dynamic accumulators for the next iteration
        lines.append("    cy = 0")
    if track_l1:
        lines.append("    _mi = 0")
    lines += root_lines

    # expand placeholders now that the written set and worst-case path
    # length are final
    written = sorted(written_regs)
    if mode:
        le_cond = (
            f"m._countdown <= {bound}"
            f" or state.instructions + {max_k} > _maxi"
        )
    else:
        le_cond = f"state.instructions + {max_k} > _maxi"
    expanded: list[str] = []
    for ln in lines:
        # inlined sub-traces get re-indented wholesale, so a placeholder
        # line is (outer indent) + marker + (frame-local indent)
        if "\x00WB" in ln:
            indent = ln.replace("\x00WB", "")
            expanded.extend(f"{indent}regs[{i}] = r{i}" for i in written)
        elif "\x00LE" in ln:
            indent = ln.replace("\x00LE", "")
            expanded.extend([
                f"{indent}if {le_cond}:",
                f"{indent}    return {start}",
                f"{indent}continue",
            ])
        else:
            expanded.append(ln)

    head: list[str] = [
        f"def _b{start}{suffix}(m, regs, words, state, caches, predictor):"
    ]
    if flags["mem"]:
        # The L1 MRU-hit test is inlined at every memory op; anything else
        # (LRU move, miss, allocation) calls back into the hierarchy so
        # cache state stays bit-identical to the interpreter's.
        head += [
            "    _l1 = caches.l1",
            "    _l1s = _l1.sets",
            "    _l1m = _l1.set_mask",
            "    _lb = _l1.line_bits",
            "    _acc = caches.access_uncounted",
        ]
    if flags["loop"]:
        head.append("    _maxi = state.max_instructions")
    # load every used register up front: exits flush the full written set
    # unconditionally, so all the locals must be bound from the start
    head.extend(f"    r{i} = regs[{i}]" for i in sorted(used_regs))
    if flags["loop"]:
        body = ["    while True:"] + ["    " + ln for ln in expanded]
    else:
        body = expanded
    return "\n".join(head + body) + "\n", max_k, bound, fallthroughs


def _event_bound(instrs, mode) -> int:
    """Worst-case countdown events one execution of the block can cost."""
    if mode == "instr":
        return len(instrs)
    if mode == "cycles":
        return sum(_WORST_CYCLES.get(ins[0], 1) for _, ins in instrs)
    if mode == "loads" or mode == "l1":
        return sum(1 for _, ins in instrs if ins[0] == Opcode.LOAD)
    if mode == "brmiss":
        return sum(
            1 for _, ins in instrs
            if ins[0] == Opcode.BRZ or ins[0] == Opcode.BRNZ
        )
    return 0
