"""Fast-VM speed benchmark: execution tiers against each other.

Times each TPC-H query on the *same* compiled program under three
engines — the tier-0 block interpreter (``fast_vm=False``), the tier-1
template-translated fast VM, and the tier-2 profile-specialized traces
(promoted through a :class:`~repro.vm.tiering.TieringController` before
the timed region) — so the measured deltas are purely the execution
engine, never the planner or backend.  Compilation happens once per
query outside the timed region; each engine takes the best of
``repeats`` runs to shed scheduler noise.

Every run also asserts parity: all engines must produce identical result
rows and identical (cycles, instructions) counters, so a speedup obtained
by drifting from the interpreter's semantics can never be reported.  The
tiered run additionally asserts it actually executed at tier 2.

``append_trajectory`` keeps ``BENCH_vm.json`` as an append-only list of
run records — the speedup trajectory across commits that CI uploads and
gates on (see ``benchmarks/bench_vm_speed.py``).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.engine import Database

#: queries spanning the interesting regimes: tight aggregation loops (q1,
#: q6), join-heavy plans (q9, q18), EXISTS/anti-join control flow (q4,
#: q22), LIKE scans (q13) and wide disjunctive predicates (q19)
DEFAULT_QUERIES = (
    "q1", "q3", "q4", "q6", "q9", "q13", "q18", "q19", "q22",
)

#: the profile-stable subset: queries whose hot loops are morsel-scoped
#: scan/aggregation loops, so the rolling profile's entry counts mark
#: them for tier-2 deferred sync.  Join-probe-dominated plans (q9, q18)
#: re-enter their hot blocks once per row — the profile correctly
#: refuses deferral there, so tier 2 is near-neutral on them and they
#: would only measure noise in a tiering gate.
PROFILE_STABLE_QUERIES = ("q1", "q3", "q6", "q13", "q19", "q22")


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _timed_run(db, compiled, fast_vm: bool, tiering=None):
    """One run: ``(seconds, rows, counters, tier)``."""
    started = time.perf_counter()
    machines, rows, _ = db._run_compiled(
        compiled, fast_vm=fast_vm, tiering=tiering
    )
    elapsed = time.perf_counter() - started
    counters = (
        sum(m.state.instructions for m in machines),
        max(m.state.cycles for m in machines),
    )
    return elapsed, rows, counters, max(m.tier for m in machines)


def _best_run(db, compiled, fast_vm: bool, repeats: int, tiering=None):
    """Best-of-``repeats`` wall time plus the final run's observables."""
    best = math.inf
    rows = counters = None
    tier = 0
    for _ in range(repeats):
        elapsed, rows, counters, run_tier = _timed_run(
            db, compiled, fast_vm, tiering
        )
        best = min(best, elapsed)
        tier = max(tier, run_tier)
    return best, rows, counters, tier


def run_vm_bench(
    queries=None,
    scale: float = 0.001,
    seed: int = 42,
    repeats: int = 3,
    log=None,
) -> dict:
    """Benchmark fast VM vs interpreter; returns the run record.

    The record holds per-query wall times and speedups plus the geometric
    mean; parity of rows and simulated counters is asserted per query.
    """
    from repro.data.queries import ALL_QUERIES

    from repro.vm.tiering import TieringController

    emit = log or (lambda message: None)
    names = list(queries) if queries else list(DEFAULT_QUERIES)
    per_query = {}
    for name in names:
        sql = ALL_QUERIES[name].sql
        db = Database.tpch(scale=scale, seed=seed)
        started = time.perf_counter()
        compiled = db._compile(sql, None)
        compile_s = time.perf_counter() - started

        # promote to tier 2 before the timed region: the first observed
        # run crosses the (floor-level) hotness threshold and recompiles
        # against its rolling profile
        tiering = TieringController(hot_instructions=1)
        db._run_compiled(compiled, fast_vm=True, tiering=tiering)

        # Tier 1 and tier 2 are close (tens of percent, not multiples),
        # so their comparison interleaves the sides within every round
        # and takes the median of per-round ratios: machine drift hits
        # both sides of each ratio equally instead of flaking the gate
        # (same estimator as benchmarks/_harness.py).
        fast_s = tiered_s = math.inf
        ratios = []
        fast_rows = fast_counters = None
        tiered_rows = tiered_counters = None
        tier = 0
        for _ in range(repeats):
            f_s, fast_rows, fast_counters, _ = _timed_run(
                db, compiled, True
            )
            t_s, tiered_rows, tiered_counters, run_tier = _timed_run(
                db, compiled, True, tiering=tiering
            )
            ratios.append(f_s / t_s)
            fast_s = min(fast_s, f_s)
            tiered_s = min(tiered_s, t_s)
            tier = max(tier, run_tier)
        slow_s, slow_rows, slow_counters, _ = _best_run(
            db, compiled, False, repeats
        )
        if fast_rows != slow_rows or tiered_rows != slow_rows:
            raise AssertionError(f"{name}: fast VM rows differ")
        if fast_counters != slow_counters:
            raise AssertionError(
                f"{name}: fast VM counters differ "
                f"(fast {fast_counters} vs interp {slow_counters})"
            )
        if tiered_counters != slow_counters:
            raise AssertionError(
                f"{name}: tiered counters differ "
                f"(tiered {tiered_counters} vs interp {slow_counters})"
            )
        if tier < 2:
            raise AssertionError(
                f"{name}: tiered run never reached tier 2 (tier {tier})"
            )
        speedup = slow_s / fast_s
        tiered_speedup = _median(ratios)
        per_query[name] = {
            "compile_s": round(compile_s, 4),
            "fast_s": round(fast_s, 4),
            "tiered_s": round(tiered_s, 4),
            "interp_s": round(slow_s, 4),
            "speedup": round(speedup, 3),
            "tiered_speedup": round(tiered_speedup, 3),
        }
        emit(
            f"{name}: interp {slow_s * 1000:7.1f} ms   "
            f"fast {fast_s * 1000:7.1f} ms   "
            f"tiered {tiered_s * 1000:7.1f} ms   "
            f"{speedup:5.2f}x   t2 {tiered_speedup:5.2f}x"
        )
    geomean = math.exp(
        sum(math.log(q["speedup"]) for q in per_query.values())
        / len(per_query)
    )
    tiered_geomean = math.exp(
        sum(math.log(q["tiered_speedup"]) for q in per_query.values())
        / len(per_query)
    )
    stable = [
        per_query[n]["tiered_speedup"]
        for n in PROFILE_STABLE_QUERIES
        if n in per_query
    ]
    stable_geomean = (
        math.exp(sum(math.log(s) for s in stable) / len(stable))
        if stable
        else 1.0
    )
    emit(f"geomean speedup: {geomean:.3f}x over {len(per_query)} queries")
    emit(
        f"tiered geomean: {tiered_geomean:.3f}x over tier 1 "
        f"({stable_geomean:.3f}x on the profile-stable subset)"
    )
    return {
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "queries": per_query,
        "geomean_speedup": round(geomean, 3),
        "tiered_geomean_speedup": round(tiered_geomean, 3),
        "tiered_stable_geomean_speedup": round(stable_geomean, 3),
    }


def format_table(record: dict) -> str:
    """Render one run record as the benchmark-suite report table."""
    lines = [
        f"{'query':<6} {'interp (ms)':>12} {'fast (ms)':>12} "
        f"{'tiered (ms)':>12} {'speedup':>9} {'t2/t1':>8}"
    ]
    for name, q in record["queries"].items():
        tiered_s = q.get("tiered_s")
        tiered_speedup = q.get("tiered_speedup")
        lines.append(
            f"{name:<6} {q['interp_s'] * 1000:>12.1f} "
            f"{q['fast_s'] * 1000:>12.1f} "
            + (
                f"{tiered_s * 1000:>12.1f} "
                if tiered_s is not None
                else f"{'-':>12} "
            )
            + f"{q['speedup']:>8.2f}x"
            + (
                f" {tiered_speedup:>7.2f}x"
                if tiered_speedup is not None
                else f" {'-':>8}"
            )
        )
    lines.append(f"geomean speedup: {record['geomean_speedup']:.3f}x")
    if "tiered_geomean_speedup" in record:
        lines.append(
            "tiered geomean: "
            f"{record['tiered_geomean_speedup']:.3f}x over tier 1"
        )
    return "\n".join(lines)


def append_trajectory(record: dict, path: str | Path) -> list[dict]:
    """Append one run record to the ``BENCH_vm.json`` trajectory file."""
    path = Path(path)
    history: list[dict] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                history = loaded
        except (OSError, ValueError):
            history = []
    record = dict(record, run=len(history))
    history.append(record)
    path.write_text(json.dumps(history, indent=1) + "\n")
    return history
