"""Fast-VM speed benchmark: translated blocks vs the block interpreter.

Times each TPC-H query twice on the *same* compiled program — once on the
template-translated fast VM and once with ``fast_vm=False`` — so the
measured delta is purely the execution engine, never the planner or
backend.  Compilation happens once per query outside the timed region;
each engine takes the best of ``repeats`` runs to shed scheduler noise.

Every run also asserts parity: both engines must produce identical result
rows and identical (cycles, instructions) counters, so a speedup obtained
by drifting from the interpreter's semantics can never be reported.

``append_trajectory`` keeps ``BENCH_vm.json`` as an append-only list of
run records — the speedup trajectory across commits that CI uploads and
gates on (see ``benchmarks/bench_vm_speed.py``).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.engine import Database

#: queries spanning the interesting regimes: tight aggregation loops (q1,
#: q6), join-heavy plans (q9, q18), EXISTS/anti-join control flow (q4,
#: q22), LIKE scans (q13) and wide disjunctive predicates (q19)
DEFAULT_QUERIES = (
    "q1", "q3", "q4", "q6", "q9", "q13", "q18", "q19", "q22",
)


def _best_run(db, compiled, fast_vm: bool, repeats: int):
    """Best-of-``repeats`` wall time plus the final run's observables."""
    best = math.inf
    machines = rows = None
    for _ in range(repeats):
        started = time.perf_counter()
        machines, rows, _ = db._run_compiled(compiled, fast_vm=fast_vm)
        best = min(best, time.perf_counter() - started)
    counters = (
        sum(m.state.instructions for m in machines),
        max(m.state.cycles for m in machines),
    )
    return best, rows, counters


def run_vm_bench(
    queries=None,
    scale: float = 0.001,
    seed: int = 42,
    repeats: int = 3,
    log=None,
) -> dict:
    """Benchmark fast VM vs interpreter; returns the run record.

    The record holds per-query wall times and speedups plus the geometric
    mean; parity of rows and simulated counters is asserted per query.
    """
    from repro.data.queries import ALL_QUERIES

    emit = log or (lambda message: None)
    names = list(queries) if queries else list(DEFAULT_QUERIES)
    per_query = {}
    for name in names:
        sql = ALL_QUERIES[name].sql
        db = Database.tpch(scale=scale, seed=seed)
        started = time.perf_counter()
        compiled = db._compile(sql, None)
        compile_s = time.perf_counter() - started

        fast_s, fast_rows, fast_counters = _best_run(
            db, compiled, True, repeats
        )
        slow_s, slow_rows, slow_counters = _best_run(
            db, compiled, False, repeats
        )
        if fast_rows != slow_rows:
            raise AssertionError(f"{name}: fast VM rows differ")
        if fast_counters != slow_counters:
            raise AssertionError(
                f"{name}: fast VM counters differ "
                f"(fast {fast_counters} vs interp {slow_counters})"
            )
        speedup = slow_s / fast_s
        per_query[name] = {
            "compile_s": round(compile_s, 4),
            "fast_s": round(fast_s, 4),
            "interp_s": round(slow_s, 4),
            "speedup": round(speedup, 3),
        }
        emit(
            f"{name}: interp {slow_s * 1000:7.1f} ms   "
            f"fast {fast_s * 1000:7.1f} ms   {speedup:5.2f}x"
        )
    geomean = math.exp(
        sum(math.log(q["speedup"]) for q in per_query.values())
        / len(per_query)
    )
    emit(f"geomean speedup: {geomean:.3f}x over {len(per_query)} queries")
    return {
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "queries": per_query,
        "geomean_speedup": round(geomean, 3),
    }


def format_table(record: dict) -> str:
    """Render one run record as the benchmark-suite report table."""
    lines = [
        f"{'query':<6} {'interp (ms)':>12} {'fast (ms)':>12} {'speedup':>9}"
    ]
    for name, q in record["queries"].items():
        lines.append(
            f"{name:<6} {q['interp_s'] * 1000:>12.1f} "
            f"{q['fast_s'] * 1000:>12.1f} {q['speedup']:>8.2f}x"
        )
    lines.append(f"geomean speedup: {record['geomean_speedup']:.3f}x")
    return "\n".join(lines)


def append_trajectory(record: dict, path: str | Path) -> list[dict]:
    """Append one run record to the ``BENCH_vm.json`` trajectory file."""
    path = Path(path)
    history: list[dict] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                history = loaded
        except (OSError, ValueError):
            history = []
    record = dict(record, run=len(history))
    history.append(record)
    path.write_text(json.dumps(history, indent=1) + "\n")
    return history
