"""Shared fixtures: session-scoped databases (loading is the slow part)."""

import pytest

from repro import Database


@pytest.fixture(scope="session")
def tpch_db():
    """A small TPC-H database shared by integration tests."""
    return Database.tpch(scale=0.001, seed=42)


@pytest.fixture(scope="session")
def example_db():
    """The paper's Figure 3 example database."""
    return Database.example(n_sales=3000, n_products=150)


def rows_match(got, want, rel=1e-9):
    """Compare result rows with float tolerance, order-insensitively."""
    if len(got) != len(want):
        return False
    for g, w in zip(sorted(got, key=repr), sorted(want, key=repr)):
        if len(g) != len(w):
            return False
        for a, b in zip(g, w):
            if isinstance(a, float) or isinstance(b, float):
                if abs(a - b) > rel * max(1.0, abs(a), abs(b)):
                    return False
            elif a != b:
                return False
    return True
