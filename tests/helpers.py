"""Shared test fixtures: tiny hand-built catalogs and query helpers."""

from __future__ import annotations

from repro.catalog import Catalog, Column, DataType, Schema
from repro.plan.interpret import Interpreter
from repro.plan.physical import PlannerOptions, plan_physical
from repro.sql import parse
from repro.sql.binder import Binder


def small_catalog() -> Catalog:
    """Two small joinable tables with every data type."""
    catalog = Catalog()
    t = DataType
    items = catalog.create_table("items", Schema([
        Column("id", t.INT),
        Column("kind", t.STRING),
        Column("price", t.DECIMAL),
        Column("sold", t.DATE),
    ]))
    items.extend([
        (1, "apple", 1.50, "2020-01-01"),
        (2, "banana", 0.75, "2020-01-02"),
        (3, "apple", 2.00, "2020-02-01"),
        (4, "cherry", 5.25, "2020-02-15"),
        (5, "banana", 0.60, "2020-03-01"),
        (6, "apple", 1.80, "2021-01-01"),
    ])
    kinds = catalog.create_table("kinds", Schema([
        Column("name", t.STRING),
        Column("tasty", t.INT),
    ]))
    kinds.extend([
        ("apple", 1),
        ("banana", 0),
        ("cherry", 1),
    ])
    catalog.finalize()
    return catalog


def run_interpreted(catalog: Catalog, sql: str, hint=None, options=None):
    """parse -> bind -> physical plan -> reference interpreter."""
    bound = Binder(catalog).bind(parse(sql), join_order_hint=hint)
    physical = plan_physical(bound.plan, bound.model, options or PlannerOptions())
    interp = Interpreter()
    rows = interp.run(physical)
    return rows, physical, interp
