"""End-to-end backend tests: IR functions compiled and executed on the VM."""

import pytest

from repro.backend import BackendOptions, compile_module, optimize_function
from repro.ir import IRBuilder, Module, Type, verify_function
from repro.vm import CodeRegion, Machine, Memory, Program
from repro.vm.isa import REG_TAG, Opcode


def compile_and_run(module, fn_name, args=(), options=None, memory=None, setup=None):
    program = Program()
    compiled = compile_module(module, program, CodeRegion.QUERY, options)
    memory = memory or Memory(1 << 20)
    machine = Machine(program, memory)
    if setup:
        setup(machine)
    result = machine.call(compiled[fn_name].info.start, args)
    return result, machine, compiled


def test_constant_expression():
    module = Module("m")
    fn = module.new_function("f", [], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    v = b.mul(b.add(b.const(3), b.const(4)), b.const(6))
    b.ret(v)
    result, _, compiled = compile_and_run(module, "f")
    assert result == 42
    # the whole expression should have been folded to a constant
    assert compiled["f"].opt_result.folded >= 2


def test_parameters_and_arithmetic():
    module = Module("m")
    fn = module.new_function("f", [("a", Type.I64), ("b", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    a, c = fn.params
    b.ret(b.sub(b.mul(a, c), b.const(1)))
    result, _, _ = compile_and_run(module, "f", (6, 7))
    assert result == 41


def test_loop_sum_with_phi():
    module = Module("m")
    fn = module.new_function("sum", [("base", Type.PTR), ("n", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    entry, loop, body, done = (b.block(x) for x in ("entry", "loop", "body", "done"))
    base, n = fn.params
    b.set_block(entry)
    b.br(loop)
    b.set_block(loop)
    i = b.phi(Type.I64)
    acc = b.phi(Type.I64)
    b.add_incoming(i, b.const(0), entry)
    b.add_incoming(acc, b.const(0), entry)
    in_range = b.cmp("cmplt", i, n)
    b.condbr(in_range, body, done)
    b.set_block(body)
    addr = b.gep(base, i, scale=8)
    value = b.load(addr)
    new_acc = b.add(acc, value)
    new_i = b.add(i, b.const(1))
    b.add_incoming(i, new_i, body)
    b.add_incoming(acc, new_acc, body)
    b.br(loop)
    b.set_block(done)
    b.ret(acc)

    memory = Memory(1 << 20)
    base_addr = memory.alloc(100 * 8)
    for k in range(100):
        memory.write(base_addr + 8 * k, k)
    result, machine, _ = compile_and_run(module, "sum", (base_addr, 100), memory=memory)
    assert result == sum(range(100))
    assert machine.state.loads >= 100


def test_branchy_max():
    module = Module("m")
    fn = module.new_function("mx", [("a", Type.I64), ("b", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    entry, t, f, j = (b.block(x) for x in ("entry", "t", "f", "j"))
    a, c = fn.params
    b.set_block(entry)
    b.condbr(b.cmp("cmpgt", a, c), t, f)
    b.set_block(t)
    b.br(j)
    b.set_block(f)
    b.br(j)
    b.set_block(j)
    out = b.phi(Type.I64)
    b.add_incoming(out, a, t)
    b.add_incoming(out, c, f)
    b.ret(out)
    assert compile_and_run(module, "mx", (3, 9))[0] == 9
    assert compile_and_run(module, "mx", (9, 3))[0] == 9


def test_select_and_float_ops():
    module = Module("m")
    fn = module.new_function("f", [("a", Type.I64), ("b", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    a, c = fn.params
    ratio = b.fdiv(b.sitofp(a), b.sitofp(c))
    big = b.cmp("cmpgt", ratio, b.const_f64(2.0))
    picked = b.select(big, a, c)
    b.ret(picked)
    assert compile_and_run(module, "f", (10, 3))[0] == 10
    assert compile_and_run(module, "f", (4, 3))[0] == 3


def test_cross_function_call():
    module = Module("m")
    callee = module.new_function("callee", [("x", Type.I64)], Type.I64)
    cb = IRBuilder(callee)
    cb.set_block(cb.block("entry"))
    cb.ret(cb.add(callee.params[0], cb.const(5)))

    caller = module.new_function("caller", [("x", Type.I64)], Type.I64)
    b = IRBuilder(caller)
    b.set_block(b.block("entry"))
    r1 = b.call("callee", [caller.params[0]])
    r2 = b.call("callee", [r1])
    b.ret(r2)
    result, machine, _ = compile_and_run(module, "caller", (1,))
    assert result == 11


def test_call_against_prelinked_runtime():
    runtime_module = Module("rt")
    fn = runtime_module.new_function("double_it", [("x", Type.I64)], Type.I64)
    rb = IRBuilder(fn)
    rb.set_block(rb.block("entry"))
    rb.ret(rb.add(fn.params[0], fn.params[0]))

    program = Program()
    compile_module(runtime_module, program, CodeRegion.RUNTIME)

    query_module = Module("q")
    qfn = query_module.new_function("q", [("x", Type.I64)], Type.I64)
    qb = IRBuilder(qfn)
    qb.set_block(qb.block("entry"))
    qb.ret(qb.call("double_it", [qfn.params[0]]))
    compiled = compile_module(query_module, program, CodeRegion.QUERY)
    machine = Machine(program, Memory(1 << 16))
    assert machine.call(compiled["q"].info.start, (21,)) == 42


def test_value_live_across_call_is_preserved():
    module = Module("m")
    callee = module.new_function("clobber", [], Type.I64)
    cb = IRBuilder(callee)
    cb.set_block(cb.block("entry"))
    # lots of local pressure so the callee really uses registers
    acc = cb.const(1)
    vals = []
    for i in range(12):
        vals.append(cb.add(cb.const(i), acc))
    total = vals[0]
    for v in vals[1:]:
        total = cb.add(total, v)
    cb.ret(total)

    caller = module.new_function("caller", [("x", Type.I64)], Type.I64)
    b = IRBuilder(caller)
    b.set_block(b.block("entry"))
    x = caller.params[0]
    doubled = b.add(x, x)
    b.call("clobber", [])
    b.ret(doubled)  # doubled must survive the call
    result, _, _ = compile_and_run(module, "caller", (21,))
    assert result == 42


def test_high_register_pressure_spills_correctly():
    module = Module("m")
    fn = module.new_function("f", [("x", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    x = fn.params[0]
    # 20 simultaneously-live values force spilling with a 9-register pool
    values = [b.mul(x, b.const(i + 1)) for i in range(20)]
    total = values[0]
    for v in values[1:]:
        total = b.add(total, v)
    b.ret(total)
    result, _, compiled = compile_and_run(module, "f", (2,))
    assert result == 2 * sum(range(1, 21))
    assert compiled["f"].alloc_stats.spilled > 0


def test_reserving_tag_register_changes_code():
    def build():
        module = Module("m")
        fn = module.new_function("f", [("x", Type.I64)], Type.I64)
        b = IRBuilder(fn)
        b.set_block(b.block("entry"))
        x = fn.params[0]
        values = [b.mul(x, b.const(i + 1)) for i in range(12)]
        total = values[0]
        for v in values[1:]:
            total = b.add(total, v)
        b.ret(total)
        return module

    plain = compile_and_run(build(), "f", (1,))
    reserved = compile_and_run(
        build(), "f", (1,), options=BackendOptions(reserve_tag_register=True)
    )
    assert plain[0] == reserved[0]
    # fewer registers => at least as many spills, usually more native code
    assert (
        reserved[2]["f"].alloc_stats.spilled >= plain[2]["f"].alloc_stats.spilled
    )


def test_settag_lowers_to_tag_register_writes():
    module = Module("m")
    fn = module.new_function("f", [], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    old = b.settag(b.const(7))
    restored = b.settag(old)
    b.ret(b.const(0))
    program = Program()
    compiled = compile_module(
        module, program, CodeRegion.QUERY, BackendOptions(reserve_tag_register=True)
    )
    machine = Machine(program, Memory(1 << 16))
    machine.regs[REG_TAG] = 99
    machine.call(compiled["f"].info.start)
    assert machine.regs[REG_TAG] == 99  # restored
    info = compiled["f"].info
    tag_writes = [
        ins for ins in program.code[info.start:info.end]
        if ins[0] in (Opcode.MOVI, Opcode.MOV) and ins[1] == REG_TAG
    ]
    assert len(tag_writes) == 2


def test_settag_disappears_without_reservation():
    module = Module("m")
    fn = module.new_function("f", [], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    old = b.settag(b.const(7))
    b.settag(old)
    b.ret(b.const(0))
    program = Program()
    compiled = compile_module(module, program, CodeRegion.QUERY)
    info = compiled["f"].info
    for ins in program.code[info.start:info.end]:
        assert not (ins[0] in (Opcode.MOVI, Opcode.MOV) and ins[1] == REG_TAG)


def test_debug_info_maps_native_to_ir():
    module = Module("m")
    fn = module.new_function("f", [("a", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    v = b.add(fn.params[0], b.const(1))
    w = b.mul(v, v)
    b.ret(w)
    program = Program()
    compiled = compile_module(module, program, CodeRegion.QUERY)
    info = compiled["f"].info
    ir_ids = {program.debug.get(ip) for ip in range(info.start, info.end)}
    assert v.id in ir_ids and w.id in ir_ids


def test_dce_removes_unused_code():
    module = Module("m")
    fn = module.new_function("f", [("a", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    dead = b.mul(fn.params[0], b.const(123))
    b.ret(b.add(fn.params[0], b.const(1)))
    program = Program()
    compiled = compile_module(module, program, CodeRegion.QUERY)
    assert dead.id in compiled["f"].opt_result.removed


def test_cse_merges_duplicates_and_records_parents():
    module = Module("m")
    fn = module.new_function("f", [("a", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    x1 = b.mul(fn.params[0], b.const(3))
    x2 = b.mul(fn.params[0], b.const(3))
    b.ret(b.add(x1, x2))
    opt = optimize_function(fn)
    verify_function(fn)
    assert opt.merged.get(x1.id) == {x2.id}
    program = Program()
    compiled = compile_module(module, program, CodeRegion.QUERY,
                              BackendOptions(optimize=False))
    machine = Machine(program, Memory(1 << 16))
    assert machine.call(compiled["f"].info.start, (5,)) == 30


def test_fold_keeps_divide_by_zero_fault():
    module = Module("m")
    fn = module.new_function("f", [], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    v = b.sdiv(b.const(1), b.const(0))
    b.ret(v)
    program = Program()
    compiled = compile_module(module, program, CodeRegion.QUERY)
    machine = Machine(program, Memory(1 << 16))
    from repro.errors import VMError
    with pytest.raises(VMError):
        machine.call(compiled["f"].info.start)


def test_phi_swap_parallel_copy():
    """The classic lost-copy case: two phis exchange values each iteration.

    (a, b) = (b, a) repeated n times; a naive sequential copy would
    collapse both to one value."""
    module = Module("m")
    fn = module.new_function("swap", [("n", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    entry, loop, body, done = (b.block(x) for x in ("entry", "loop", "body", "done"))
    n = fn.params[0]
    b.set_block(entry)
    b.br(loop)
    b.set_block(loop)
    i = b.phi(Type.I64)
    x = b.phi(Type.I64)
    y = b.phi(Type.I64)
    b.add_incoming(i, b.const(0), entry)
    b.add_incoming(x, b.const(1), entry)
    b.add_incoming(y, b.const(2), entry)
    in_range = b.cmp("cmplt", i, n)
    b.condbr(in_range, body, done)
    b.set_block(body)
    next_i = b.add(i, b.const(1))
    b.add_incoming(i, next_i, body)
    b.add_incoming(x, y, body)  # swap!
    b.add_incoming(y, x, body)
    b.br(loop)
    b.set_block(done)
    combined = b.add(b.mul(x, b.const(10)), y)
    b.ret(combined)

    # odd iteration count: x=2, y=1 -> 21; even: x=1, y=2 -> 12
    assert compile_and_run(module, "swap", (3,))[0] == 21
    module2 = Module("m2")
    fn2 = module2.new_function("swap", [("n", Type.I64)], Type.I64)
    # rebuild for a fresh module (ids are global, functions are not reusable)
    b = IRBuilder(fn2)
    entry, loop, body, done = (b.block(x) for x in ("entry", "loop", "body", "done"))
    n = fn2.params[0]
    b.set_block(entry)
    b.br(loop)
    b.set_block(loop)
    i = b.phi(Type.I64)
    x = b.phi(Type.I64)
    y = b.phi(Type.I64)
    b.add_incoming(i, b.const(0), entry)
    b.add_incoming(x, b.const(1), entry)
    b.add_incoming(y, b.const(2), entry)
    in_range = b.cmp("cmplt", i, n)
    b.condbr(in_range, body, done)
    b.set_block(body)
    next_i = b.add(i, b.const(1))
    b.add_incoming(i, next_i, body)
    b.add_incoming(x, y, body)
    b.add_incoming(y, x, body)
    b.br(loop)
    b.set_block(done)
    b.ret(b.add(b.mul(x, b.const(10)), y))
    assert compile_and_run(module2, "swap", (4,))[0] == 12


def test_select_with_spilled_operands():
    """SELECT is the only three-source instruction; force all its sources

    into spill slots and check the scratch-register plumbing."""
    module = Module("m")
    fn = module.new_function("f", [("x", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    x = fn.params[0]
    # enough simultaneously-live values to exhaust the pool
    live = [b.mul(x, b.const(i + 1)) for i in range(18)]
    cond = b.cmp("cmpgt", live[0], live[1])
    picked = b.select(cond, live[2], live[3])
    total = picked
    for v in live:
        total = b.add(total, v)
    b.ret(total)
    result, _, compiled = compile_and_run(module, "f", (3,))
    live_py = [3 * (i + 1) for i in range(18)]
    picked_py = live_py[2] if live_py[0] > live_py[1] else live_py[3]
    assert result == picked_py + sum(live_py)
    assert compiled["f"].alloc_stats.spilled > 0
