"""Unit tests for schemas, string dictionary, tables, and the catalog."""

import pytest

from repro.catalog import Catalog, Column, DataType, Schema, StringDictionary, Table
from repro.catalog.schema import decode_date, encode_date, encode_decimal
from repro.catalog.strings import like_to_regex
from repro.errors import CatalogError


def test_schema_lookup_and_duplicates():
    schema = Schema([Column("a", DataType.INT), Column("b", DataType.STRING)])
    assert schema.index_of("b") == 1
    assert schema.column("a").dtype is DataType.INT
    assert schema.has_column("a") and not schema.has_column("c")
    with pytest.raises(CatalogError):
        schema.index_of("zzz")
    with pytest.raises(CatalogError):
        Schema([Column("x", DataType.INT), Column("x", DataType.INT)])


def test_date_encoding_roundtrip():
    encoded = encode_date("1995-04-01")
    assert decode_date(encoded) == "1995-04-01"
    assert encode_date("1995-04-02") == encoded + 1
    with pytest.raises(CatalogError):
        encode_date("not-a-date")


def test_decimal_encoding():
    assert encode_decimal(1.50) == 150
    assert encode_decimal(0.05) == 5
    assert encode_decimal(3) == 300


def test_dictionary_is_order_preserving():
    d = StringDictionary()
    for s in ["pear", "apple", "zebra", "mango"]:
        d.collect(s)
    d.freeze()
    ids = [d.id_of(s) for s in ["apple", "mango", "pear", "zebra"]]
    assert ids == sorted(ids)
    assert d.value_of(d.id_of("mango")) == "mango"


def test_dictionary_rank_brackets_absent_values():
    d = StringDictionary()
    for s in ["apple", "cherry"]:
        d.collect(s)
    d.freeze()
    assert d.rank("banana") == 1  # between apple (0) and cherry (1)
    assert d.rank("aaa") == 0
    assert d.rank("zzz") == 2


def test_dictionary_lifecycle_errors():
    d = StringDictionary()
    with pytest.raises(CatalogError):
        d.id_of("x")
    d.collect("x")
    d.freeze()
    with pytest.raises(CatalogError):
        d.collect("y")
    with pytest.raises(CatalogError):
        d.freeze()
    with pytest.raises(CatalogError):
        d.id_of("missing")
    assert d.lookup("missing") is None
    with pytest.raises(CatalogError):
        d.value_of(99)


def test_like_matching():
    d = StringDictionary()
    for s in ["PROMO BRUSHED TIN", "STANDARD BRUSHED TIN", "PROMO PLATED BRASS"]:
        d.collect(s)
    d.freeze()
    promo = d.matching_ids("PROMO%")
    assert promo == {d.id_of("PROMO BRUSHED TIN"), d.id_of("PROMO PLATED BRASS")}
    assert d.matching_ids("%TIN") == {
        d.id_of("PROMO BRUSHED TIN"), d.id_of("STANDARD BRUSHED TIN")
    }
    assert d.matching_ids("x_z") == set()


def test_like_to_regex_escapes_metacharacters():
    regex = like_to_regex("a.b%")
    assert regex.fullmatch("a.bcd")
    assert not regex.fullmatch("axbcd")
    underscore = like_to_regex("a_c")
    assert underscore.fullmatch("abc") and not underscore.fullmatch("abbc")


def test_table_append_and_encode():
    schema = Schema([
        Column("k", DataType.INT),
        Column("s", DataType.STRING),
        Column("d", DataType.DATE),
        Column("m", DataType.DECIMAL),
    ])
    table = Table("t", schema)
    table.append((1, "hi", "2000-01-01", 2.5))
    with pytest.raises(CatalogError):
        table.append((1, "short"))
    d = StringDictionary()
    table.collect_strings(d)
    d.freeze()
    table.encode(d)
    assert table.columns[1] == [d.id_of("hi")]
    assert table.columns[2] == [encode_date("2000-01-01")]
    assert table.columns[3] == [250]
    with pytest.raises(CatalogError):
        table.encode(d)
    with pytest.raises(CatalogError):
        table.append((2, "late", "2000-01-02", 1.0))


def test_table_stats():
    schema = Schema([Column("k", DataType.INT)])
    table = Table("t", schema)
    for v in (5, 1, 5, 9):
        table.append((v,))
    d = StringDictionary()
    d.freeze()
    table.encode(d)
    stats = table.stats_for(0)
    assert stats.min_value == 1 and stats.max_value == 9 and stats.distinct == 3
    assert table.stats_for(0) is stats  # cached


def test_catalog_protocol():
    catalog = Catalog()
    schema = Schema([Column("a", DataType.INT)])
    catalog.create_table("T", schema)
    assert catalog.has_table("t")
    with pytest.raises(CatalogError):
        catalog.create_table("t", schema)
    with pytest.raises(CatalogError):
        catalog.table("nope")
    catalog.finalize()
    with pytest.raises(CatalogError):
        catalog.finalize()
    with pytest.raises(CatalogError):
        catalog.create_table("late", schema)
