"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.__main__ import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_run_named_query():
    code, text = run_cli(["--query", "q6", "--scale", "0.0005"])
    assert code == 0
    assert "revenue" in text
    assert "cycles]" in text


def test_run_raw_sql():
    code, text = run_cli([
        "--sql", "select count(*) n from nation", "--scale", "0.0005",
    ])
    assert code == 0
    assert "n" in text.splitlines()[0]
    assert "25" in text


def test_explain_mode():
    code, text = run_cli([
        "--sql", "select count(*) n from lineitem where l_quantity < 5",
        "--scale", "0.0005", "--explain",
    ])
    assert code == 0
    assert "scan lineitem" in text
    assert "cycles]" not in text  # nothing executed


def test_profile_with_reports(tmp_path):
    json_path = tmp_path / "profile.json"
    folded_path = tmp_path / "stacks.folded"
    code, text = run_cli([
        "--query", "fig9", "--scale", "0.0005", "--profile",
        "--timeline", "--pipelines",
        "--json", str(json_path), "--folded", str(folded_path),
    ])
    assert code == 0
    assert "samples:" in text
    assert "activity over time:" in text
    assert "pipeline 0" in text
    document = json.loads(json_path.read_text())
    assert document["summary"]["total_samples"] > 0
    assert folded_path.read_text().strip()


def test_profile_callstack_mode():
    code, text = run_cli([
        "--query", "q6", "--scale", "0.0005", "--profile",
        "--mode", "callstack", "--period", "2000",
    ])
    assert code == 0
    assert "% operators" in text


def test_parallel_execution_via_cli():
    code, text = run_cli([
        "--query", "q6", "--scale", "0.0005", "--workers", "3",
    ])
    assert code == 0


def test_parser_rejects_missing_source():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_query():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--query", "q99"])


def test_sql_error_gets_caret_diagnostics():
    code, text = run_cli([
        "--sql", "select l_quantity frm lineitem", "--scale", "0.0005",
    ])
    assert code == 1
    assert "^" in text
    assert "line 1" in text


def test_cli_save_session(tmp_path):
    session_dir = tmp_path / "session"
    code, text = run_cli([
        "--query", "q6", "--scale", "0.0005", "--profile",
        "--save-session", str(session_dir),
    ])
    assert code == 0
    from repro.profiling.session import load_session

    session = load_session(session_dir)
    assert session.summary()["total_samples"] > 0


def test_cli_pgo_report(tmp_path):
    from repro import Database

    store_dir = tmp_path / "pgo"
    db = Database.tpch(scale=0.0005, seed=42)
    db.enable_pgo(str(store_dir))
    db.profile("select count(*) n from nation", pgo=True)
    code, text = run_cli(["pgo", str(store_dir)])
    assert code == 0
    assert "1 profiled run(s)" in text
    assert "cardinalities" in text
    assert "scan|nation" in text


def test_cli_pgo_empty_store(tmp_path):
    code, text = run_cli(["pgo", str(tmp_path / "nothing")])
    assert code == 1
    assert "no feedback stored" in text


def test_cli_dot_export(tmp_path):
    dot_path = tmp_path / "plan.dot"
    code, _ = run_cli([
        "--query", "q6", "--scale", "0.0005", "--profile",
        "--dot", str(dot_path),
    ])
    assert code == 0
    dot = dot_path.read_text()
    assert dot.startswith("digraph plan {")
    assert "scan lineitem" in dot


def test_cli_pgo_fingerprint_filter(tmp_path):
    from repro import Database

    store_dir = tmp_path / "pgo"
    db = Database.tpch(scale=0.0005, seed=42)
    db.enable_pgo(str(store_dir))
    db.profile("select count(*) n from nation", pgo=True)
    code, text = run_cli([
        "pgo", str(store_dir), "--fingerprint", "not-a-real-fingerprint",
    ])
    assert code == 1
    assert "no feedback stored" in text


def test_cli_fuzz_clean_run():
    code, text = run_cli([
        "fuzz", "--seed", "1", "--budget", "5", "--max-hints", "2",
        "--no-pgo", "--quiet",
    ])
    assert code == 0
    last = text.strip().splitlines()[-1]
    assert "fuzz seed=1" in last
    assert "ran 5 queries" in last
    assert "0 disagreement(s)" in last


def test_cli_fuzz_detects_injected_miscompile(tmp_path):
    corpus = tmp_path / "corpus"
    code, text = run_cli([
        "fuzz", "--seed", "3", "--budget", "2", "--inject-miscompile",
        "--no-pgo", "--max-hints", "0", "--corpus", str(corpus), "--quiet",
    ])
    assert code == 1
    assert "disagreement" in text
    assert "repro:" in text
    assert list(corpus.glob("*.json"))


def test_cli_fuzz_rejects_bad_budget():
    code, text = run_cli(["fuzz", "--budget", "0"])
    assert code == 2
    assert "--budget" in text


def test_cli_fuzz_progress_output():
    code, text = run_cli([
        "fuzz", "--seed", "2", "--budget", "1", "--no-pgo",
        "--max-hints", "0", "--time-limit", "60",
    ])
    assert code == 0
    assert "executor runs" in text


def test_cli_views_demo():
    code, text = run_cli(["views", "--batches", "2"])
    assert code == 0
    assert "view by_bucket" in text
    assert "view top_tickets" in text
    assert "view hot_margins" in text
    assert "subscription 'dashboard'" in text
    assert "view maintenance" in text
    assert "maintenance samples" in text


def test_cli_views_fuzz_smoke():
    code, text = run_cli([
        "views", "--fuzz", "--queries", "5", "--batches", "2", "--quiet",
    ])
    assert code == 0
    last = text.strip().splitlines()[-1]
    assert "views-fuzz seed=0" in last
    assert "0 disagreement(s)" in last


def test_cli_views_fuzz_rejects_bad_budget():
    code, text = run_cli(["views", "--fuzz", "--queries", "0"])
    assert code == 2
    assert "--queries" in text
