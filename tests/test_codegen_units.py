"""Unit tests for codegen internals: context, layout, runtime structures."""

import pytest

from repro.codegen.context import (
    CodegenContext,
    HashTableSpec,
    StateLayout,
    TupleContext,
)
from repro.codegen.hashing import emit_hash
from repro.codegen.runtime import (
    BUF_HEADER_WORDS,
    HT_HEADER_WORDS,
    build_runtime_module,
    build_syslib_module,
)
from repro.errors import CodegenError
from repro.ir import IRBuilder, Module, Type, verify_module
from repro.ir.nodes import Const
from repro.plan.expr import IU
from repro.catalog.schema import DataType
from repro.pipeline.tasks import Task
from repro.profiling.tagging import TaggingDictionary
from repro.profiling.trackers import AbstractionTracker


def make_ctx():
    module = Module("t")
    return CodegenContext(
        module=module,
        env=None,
        tagging=TaggingDictionary(),
        task_tracker=AbstractionTracker("task"),
    )


def make_task(ctx):
    from repro.plan.physical import PhysicalScan

    op = PhysicalScan.__new__(PhysicalScan)
    import repro.plan.physical as phys_mod

    op.op_id = next(phys_mod._phys_counter)
    op.logical_id = None
    op.table = None
    op.alias = "t"
    op.column_ius = {}
    task = Task(op, "scan")
    ctx.tagging.register_task(task)
    return task


# -- state layout ---------------------------------------------------------


def test_state_layout_offsets_and_size():
    layout = StateLayout()
    a = layout.reserve("a", 2)
    b = layout.reserve("b", 1)
    assert a == 0 and b == 16
    assert layout.size_bytes == 24
    with pytest.raises(CodegenError):
        layout.reserve("a", 1)


def test_empty_state_layout_still_allocatable():
    assert StateLayout().size_bytes >= 8


# -- hash table spec -------------------------------------------------------


def test_hash_table_spec_offsets():
    spec = HashTableSpec(
        name="ht", state_offset=0, directory_slots=8, entry_words=6,
        initial_entries=16, key_count=2,
    )
    # entry: [next][hash][key0][key1][payload0][payload1]
    assert spec.key_offset(0) == 16
    assert spec.key_offset(1) == 24
    assert spec.payload_offset(0) == 32
    assert spec.payload_offset(1) == 40


# -- tuple context ----------------------------------------------------------


def test_tuple_context_requires_provided_ius():
    ctx = make_ctx()
    tuples = TupleContext(ctx)
    with pytest.raises(CodegenError):
        tuples.get(IU("ghost", DataType.INT))


def test_tuple_context_caches_and_attributes_to_requester():
    ctx = make_ctx()
    fn = ctx.module.new_function("f", [])
    b = IRBuilder(fn)
    ctx.install_tagging_listener(b)
    b.set_block(b.block("entry"))
    tuples = TupleContext(ctx)
    owner = make_task(ctx)
    requester = make_task(ctx)
    iu = IU("x", DataType.INT)
    calls = []

    def emit():
        calls.append(1)
        return b.add(b.const(1), b.const(2))

    tuples.provide(iu, owner, emit)
    with ctx.task_tracker.active(requester):
        v1 = tuples.get(iu)
        v2 = tuples.get(iu)
    assert v1 is v2 and len(calls) == 1
    # attribution went to the requesting task
    (linked_tasks,) = {ctx.tagging.tasks_of_instruction(v1.id)}
    assert linked_tasks == (requester,)


def test_tuple_context_falls_back_to_owner_outside_tasks():
    ctx = make_ctx()
    fn = ctx.module.new_function("f", [])
    b = IRBuilder(fn)
    ctx.install_tagging_listener(b)
    b.set_block(b.block("entry"))
    tuples = TupleContext(ctx)
    owner = make_task(ctx)
    iu = IU("x", DataType.INT)
    tuples.provide(iu, owner, lambda: b.add(b.const(1), b.const(2)))
    value = tuples.get(iu)  # no active task
    assert ctx.tagging.tasks_of_instruction(value.id) == (owner,)


def test_tuple_context_fork_isolation():
    ctx = make_ctx()
    fn = ctx.module.new_function("f", [])
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    tuples = TupleContext(ctx)
    iu = IU("x", DataType.INT)
    fork = tuples.fork()
    owner = make_task(ctx)
    fork.provide(iu, owner, lambda: b.const(7))
    assert fork.has(iu)
    assert not tuples.has(iu)


# -- register tagging emission ------------------------------------------------


def test_call_runtime_wraps_with_settag():
    ctx = make_ctx()
    fn = ctx.module.new_function("f", [])
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    task = make_task(ctx)
    ptr = b.const(8, Type.PTR)
    result = ctx.call_runtime(b, task, "ht_insert", [ptr, b.const(1)])
    ops = [i.op for i in fn.blocks[0].instructions]
    assert ops == ["settag", "call", "settag"]
    first, call, second = fn.blocks[0].instructions
    assert isinstance(first.args[0], Const) and first.args[0].value == task.id
    assert second.args[0] is first  # restores the previous tag
    assert call is result


# -- hashing ------------------------------------------------------------------


def test_emit_hash_structure():
    module = Module("h")
    fn = module.new_function("f", [("a", Type.I64), ("b", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))
    h = emit_hash(b, [fn.params[0], fn.params[1]])
    b.ret(h)
    ops = [i.op for i in fn.blocks[0].instructions]
    # Listing 1's shape: two crc32 mixes + rotr + xor, a chain crc32 for
    # the second key, and a final multiply
    assert ops.count("crc32") == 3
    assert "rotr" in ops and "xor" in ops and "mul" in ops


# -- runtime library ------------------------------------------------------------


def test_runtime_module_verifies():
    module = build_runtime_module()
    verify_module(module)
    names = {fn.name for fn in module.functions}
    assert names == {"ht_insert", "buffer_grow"}
    assert HT_HEADER_WORDS == 6 and BUF_HEADER_WORDS == 4


def test_syslib_module_verifies():
    module = build_syslib_module()
    verify_module(module)
    assert module.functions[0].name == "memcpy"
