"""Replay every checked-in corpus case through all executor configs.

Each JSON file under ``tests/corpus/`` is a self-contained repro — a
dataset plus a query — originally either a hand-written edge case or a
minimized fuzzer finding.  The differential oracle must find full
agreement on all of them: compiled (1 and 4 workers), interpreted,
unoptimized, groupjoin, join-order hints, and the PGO path.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_case, load_directory, replay_case
from repro.errors import ReproError

CORPUS_DIR = Path(__file__).parent / "corpus"
CASES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CASES, f"no corpus cases found under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CASES, ids=[p.stem for p in CASES]
)
def test_corpus_case_agrees_across_executors(path):
    case = load_case(path)
    result = replay_case(case)
    assert not result.rejected, (
        f"{case.name}: query no longer binds: {result.reject_reason}"
    )
    assert not result.disagreements, (
        f"{case.name}: executors disagree: "
        + "; ".join(
            f"{d.config} ({d.reason})" for d in result.disagreements
        )
    )
    # the oracle really did fan out: reference + parallel + interpreted +
    # unoptimized + groupjoin + pgo at minimum
    ran = [o for o in result.outcomes if o.kind != "skipped"]
    assert len(ran) >= 5


def test_load_directory_finds_all_cases():
    cases = load_directory(CORPUS_DIR)
    assert len(cases) == len(CASES)
    assert all(c.sql and c.dataset.tables for c in cases)


def test_load_case_rejects_malformed_documents(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"name\": \"x\"}")
    with pytest.raises(ReproError, match="missing"):
        load_case(bad)
    not_json = tmp_path / "broken.json"
    not_json.write_text("{nope")
    with pytest.raises(ReproError, match="cannot load"):
        load_case(not_json)
