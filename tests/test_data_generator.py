"""Tests for the TPC-H-like generator: sizes, integrity, distributions."""

import pytest

from repro.catalog import Catalog
from repro.catalog.schema import encode_date
from repro.data import generate_example, generate_tpch
from repro.data.queries import ALL_QUERIES


@pytest.fixture(scope="module")
def catalog():
    c = Catalog()
    generate_tpch(c, scale=0.001, seed=42)
    c.finalize()
    return c


def test_all_eight_tables_exist(catalog):
    for name in ("region", "nation", "supplier", "customer",
                 "part", "partsupp", "orders", "lineitem"):
        assert catalog.has_table(name)


def test_fixed_table_sizes(catalog):
    assert catalog.table("region").row_count == 5
    assert catalog.table("nation").row_count == 25


def test_scaled_sizes(catalog):
    assert catalog.table("orders").row_count == 1500
    assert catalog.table("customer").row_count == 150
    assert catalog.table("partsupp").row_count == 4 * catalog.table("part").row_count
    lineitem = catalog.table("lineitem").row_count
    assert 1500 * 1 <= lineitem <= 1500 * 7


def test_foreign_keys_valid(catalog):
    n_cust = catalog.table("customer").row_count
    for custkey in catalog.table("orders").column_named("o_custkey"):
        assert 1 <= custkey <= n_cust
    n_part = catalog.table("part").row_count
    n_supp = catalog.table("supplier").row_count
    for partkey in catalog.table("lineitem").column_named("l_partkey"):
        assert 1 <= partkey <= n_part
    for suppkey in catalog.table("lineitem").column_named("l_suppkey"):
        assert 1 <= suppkey <= n_supp
    for nationkey in catalog.table("supplier").column_named("s_nationkey"):
        assert 0 <= nationkey <= 24


def test_lineitem_clustered_by_orderkey(catalog):
    orderkeys = catalog.table("lineitem").column_named("l_orderkey")
    assert orderkeys == sorted(orderkeys)


def test_orderdate_correlates_with_orderkey(catalog):
    """The clustering behind the Fig. 10/11 use case."""
    orders = catalog.table("orders")
    keys = orders.column_named("o_orderkey")
    dates = orders.column_named("o_orderdate")
    pairs = sorted(zip(keys, dates))
    first_quarter = [d for _, d in pairs[: len(pairs) // 4]]
    last_quarter = [d for _, d in pairs[-len(pairs) // 4 :]]
    assert max(first_quarter) < min(last_quarter) + 200  # strongly correlated
    assert sum(first_quarter) / len(first_quarter) < sum(last_quarter) / len(last_quarter)


def test_returnflag_linestatus_rules(catalog):
    lineitem = catalog.table("lineitem")
    dictionary = catalog.dictionary
    cutoff = encode_date("1995-06-17")
    flags = lineitem.column_named("l_returnflag")
    status = lineitem.column_named("l_linestatus")
    ship = lineitem.column_named("l_shipdate")
    receipt = lineitem.column_named("l_receiptdate")
    n_id = dictionary.id_of("N")
    o_id = dictionary.id_of("O")
    f_id = dictionary.id_of("F")
    for i in range(lineitem.row_count):
        if receipt[i] > cutoff:
            assert flags[i] == n_id
        assert status[i] == (o_id if ship[i] > cutoff else f_id)


def test_extendedprice_is_quantity_times_part_price(catalog):
    lineitem = catalog.table("lineitem")
    part = catalog.table("part")
    part_price = part.column_named("p_retailprice")
    quantity = lineitem.column_named("l_quantity")
    extended = lineitem.column_named("l_extendedprice")
    partkeys = lineitem.column_named("l_partkey")
    for i in range(0, lineitem.row_count, 97):
        expected = (quantity[i] // 100) * part_price[partkeys[i] - 1]
        assert extended[i] == expected


def test_dates_within_tpch_range(catalog):
    lo = encode_date("1992-01-01")
    hi = encode_date("1998-12-31")
    for d in catalog.table("orders").column_named("o_orderdate"):
        assert lo <= d <= hi


def test_generator_is_deterministic():
    a, b = Catalog(), Catalog()
    generate_tpch(a, scale=0.0005, seed=7)
    generate_tpch(b, scale=0.0005, seed=7)
    a.finalize()
    b.finalize()
    for name in ("orders", "lineitem", "part"):
        assert a.table(name).columns == b.table(name).columns


def test_different_seeds_differ():
    a, b = Catalog(), Catalog()
    generate_tpch(a, scale=0.0005, seed=1)
    generate_tpch(b, scale=0.0005, seed=2)
    a.finalize()
    b.finalize()
    assert a.table("lineitem").columns != b.table("lineitem").columns


def test_special_requests_comments_exist(catalog):
    """Q13's NOT LIKE '%special%requests%' must actually filter something."""
    dictionary = catalog.dictionary
    matching = dictionary.matching_ids("%special%requests%")
    comments = set(catalog.table("orders").column_named("o_comment"))
    assert matching & comments


def test_example_generator():
    catalog = Catalog()
    generate_example(catalog, n_sales=100, n_products=20, seed=1)
    catalog.finalize()
    assert catalog.table("sales").row_count == 100
    assert catalog.table("products").row_count == 20
    chip = catalog.dictionary.lookup("Chip")
    assert chip is not None


def test_query_suite_covers_22():
    assert len(ALL_QUERIES) == 22
    assert set(ALL_QUERIES) == {f"q{i}" for i in range(1, 23)}
    adapted = [q for q in ALL_QUERIES.values() if q.adaptation != "direct"]
    assert adapted, "adaptations must be documented"
