"""Engine façade tests: API surface, decoding, errors, lifecycle."""

import pytest

from repro import Column, DataType, Database, ProfilerConfig, Schema
from repro.errors import ReproError, SqlError


def small_db():
    db = Database()
    t = DataType
    table = db.create_table("t", Schema([
        Column("i", t.INT),
        Column("s", t.STRING),
        Column("d", t.DATE),
        Column("m", t.DECIMAL),
    ]))
    table.extend([
        (1, "one", "2001-01-01", 1.25),
        (2, "two", "2002-02-02", -3.50),
    ])
    db.finalize()
    return db


def test_query_before_finalize_rejected():
    db = Database()
    db.create_table("t", Schema([Column("a", DataType.INT)]))
    with pytest.raises(ReproError):
        db.execute("select a from t")


def test_output_decoding_per_type():
    db = small_db()
    rows = db.execute("select i, s, d, m from t order by i").rows
    assert rows == [
        (1, "one", "2001-01-01", 1.25),
        (2, "two", "2002-02-02", -3.50),
    ]


def test_result_metadata():
    db = small_db()
    result = db.execute("select i as number, m from t order by i")
    assert result.columns == ["number", "m"]
    assert len(result) == 2
    assert list(iter(result)) == result.rows
    assert result.cycles > 0 and result.instructions > 0


def test_explain_shows_plan_shape():
    db = small_db()
    text = db.explain("select count(*) c from t where i = 1")
    assert "scan t" in text
    assert "group by" in text


def test_sql_errors_are_sql_errors():
    db = small_db()
    for bad in (
        "select nope from t",
        "select i from missing_table",
        "select i from t where s = 5",
        "selec i from t",
    ):
        with pytest.raises(ReproError):
            db.execute(bad)


def test_memory_is_released_between_queries():
    db = small_db()
    db.execute("select i from t")
    used_after_first = db.memory.used_bytes()
    for _ in range(5):
        db.execute("select sum(m) x from t group by s")
    assert db.memory.used_bytes() == used_after_first


def test_profile_does_not_leak_memory_either():
    db = small_db()
    db.execute("select i from t")
    used = db.memory.used_bytes()
    db.profile("select i from t where i > 0")
    assert db.memory.used_bytes() == used


def test_empty_table_queries():
    db = Database()
    db.create_table("empty", Schema([Column("a", DataType.INT)]))
    db.finalize()
    assert db.execute("select a from empty").rows == []
    assert db.execute("select count(*) n from empty").rows == [(0,)]
    assert db.execute("select a from empty order by a limit 3").rows == []


def test_avg_over_empty_input_returns_zero():
    """Regression: ungrouped avg over zero rows used to fault (sum/count
    with count = 0); the binder now guards the division."""
    db = Database()
    db.create_table("empty", Schema([Column("a", DataType.INT)]))
    db.finalize()
    sql = "select avg(a) m, count(*) n from empty"
    assert db.execute(sql).rows == [(0.0, 0)]
    assert db.execute_interpreted(sql).rows == [(0.0, 0)]


def test_avg_empty_after_filter_matches_interpreter():
    db = small_db()
    sql = "select avg(m) v from t where i > 100"
    compiled = db.execute(sql).rows
    assert compiled == db.execute_interpreted(sql).rows == [(0.0,)]
    # non-empty input still averages normally
    full = db.execute("select avg(i) v from t").rows
    assert full == [(1.5,)]


def test_single_row_aggregates():
    db = Database()
    t = db.create_table("one", Schema([Column("a", DataType.INT)]))
    t.append((42,))
    db.finalize()
    rows = db.execute(
        "select count(*) n, sum(a) s, min(a) lo, max(a) hi, avg(a) m from one"
    ).rows
    assert rows == [(1, 42, 42, 42, 42.0)]


def test_profiler_config_validation():
    with pytest.raises(ValueError):
        ProfilerConfig(period=0).pmu_config()


def test_repeated_profiles_are_deterministic():
    db = small_db()
    sql = "select s, sum(m) v from t group by s order by s"
    first = db.profile(sql)
    second = db.profile(sql)
    assert first.result.rows == second.result.rows
    assert len(first.samples) == len(second.samples)
    assert [s.tsc for s in first.samples] == [s.tsc for s in second.samples]


def test_division_by_zero_query_faults():
    db = Database()
    t = db.create_table("z", Schema([
        Column("a", DataType.INT), Column("b", DataType.INT),
    ]))
    t.extend([(1, 0)])
    db.finalize()
    from repro.errors import VMError

    with pytest.raises(VMError):
        db.execute("select a / b r from z")
