"""Tests for profile export formats (JSON, folded stacks, perf-script)."""

import json

import pytest

from repro.data.queries import FIG9_QUERY
from repro.profiling import export


@pytest.fixture(scope="module")
def profile(tpch_db):
    return tpch_db.profile(FIG9_QUERY.sql)


def test_json_export_roundtrips(profile):
    document = json.loads(export.to_json(profile))
    assert document["config"]["mode"] == "register-tagging"
    assert document["summary"]["total_samples"] == len(profile.samples)
    shares = [c["share"] for c in document["operator_costs"]]
    assert shares == sorted(shares, reverse=True)
    assert sum(shares) == pytest.approx(1.0)
    assert len(document["samples"]) == len(profile.samples)
    for sample in document["samples"][:20]:
        assert sample["category"] in ("operator", "kernel", "unattributed")


def test_json_export_without_samples(profile):
    document = json.loads(export.to_json(profile, include_samples=False))
    assert "samples" not in document
    assert document["tagging_dictionary"]["entries"] > 0


def test_folded_stacks_format(profile):
    text = export.folded_stacks(profile)
    lines = text.splitlines()
    assert lines
    total = 0.0
    for line in lines:
        frames, count = line.rsplit(" ", 1)
        total += float(count)
        assert frames
    # weights sum to the number of samples (splits preserve mass)
    assert total == pytest.approx(len(profile.samples), abs=0.01)
    assert any(line.startswith("pipeline_") for line in lines)
    assert any(";probe" in line or ";build" in line for line in lines)


def test_folded_stacks_include_runtime_frames(profile):
    text = export.folded_stacks(profile)
    assert "ht_insert" in text  # shared-location samples keep their frame


def test_perf_script_shape(profile):
    text = export.perf_script(profile)
    lines = text.splitlines()
    assert len(lines) == len(profile.samples)
    assert all("ip=0x" in line for line in lines)
    assert any("pipeline_" in line for line in lines)
    assert any("ht_insert" in line or "kernel" in line for line in lines)


def test_perf_script_ips_roundtrip_to_symbols(profile):
    """Each dumped ip parses back and resolves to the printed symbol."""
    for line in export.perf_script(profile).splitlines()[:50]:
        ip = int(line.split("ip=")[1].split(" ")[0], 16)
        symbol = line.rsplit("(", 1)[1].rstrip(")")
        info = profile.program.function_at(ip)
        assert (info.name if info else "[unknown]") == symbol


def test_json_samples_include_branch_outcomes(profile):
    """Branch samples carry the condition-truth payload (PGO feedback)."""
    document = json.loads(export.to_json(profile))
    with_taken = [s for s in document["samples"] if "taken" in s]
    assert with_taken, "cycle sampling should land on some branches"
    assert all(isinstance(s["taken"], bool) for s in with_taken)


def test_folded_stacks_parse_back_to_weights(profile):
    """The folded format round-trips: frames split cleanly and weights
    reproduce the per-category sample totals."""
    summary = profile.attribution_summary()
    operator_mass = 0.0
    for line in export.folded_stacks(profile).splitlines():
        frames, count = line.rsplit(" ", 1)
        parts = frames.split(";")
        assert all(parts)
        if parts[0].startswith("pipeline_"):
            operator_mass += float(count)
    expected = summary.operator_share * summary.total_samples
    assert operator_mass == pytest.approx(expected, abs=0.01)
