"""Fleet router tests: partitioning, scatter/gather, quotas, failures.

The differential heart is ``assert_fleet_matches``: a query's fleet
result at several shard counts must reproduce the single-service bag.
Around it: partitioner totality properties, AVG recombination from
SUM/COUNT partials, gather-side ORDER BY/LIMIT merging, tenant-quota
shedding with the stable ``TENANT_QUOTA`` code, profile-merge
associativity with exact sample accounting, and fault injection — a
shard killed mid-scatter surfaces ``SHARD_FAILED`` (or a degraded
partial result) without hanging the gather, and cancellation propagates
to every in-flight shard subquery.
"""

from collections import Counter
from random import Random

import pytest

from repro.engine import Database
from repro.fleet import (
    Fleet,
    FleetConfig,
    FleetPlanError,
    HashPartitioner,
    PartitionSpec,
    RangePartitioner,
    fleet_profile,
    merge_snapshots,
    plan_route,
    run_fleet_workload,
)
from repro.fuzz.dataset import extract_dataset, random_dataset
from repro.fuzz.oracle import bags_equal
from repro.serve import (
    CANCELLED,
    SHARD_FAILED,
    TENANT_QUOTA,
    QueryService,
    ServiceConfig,
    ServiceError,
)


@pytest.fixture(scope="module")
def db():
    return Database.example(n_sales=400, n_products=60)


@pytest.fixture(scope="module")
def dataset(db):
    return extract_dataset(db)


def make_fleet(db, shards=2, **kwargs):
    kwargs.setdefault("workers", 2)
    return Fleet(db, FleetConfig(shards=shards, **kwargs))


def baseline_rows(db, sql):
    service = QueryService(db, ServiceConfig(workers=2))
    ticket = service.submit(sql)
    service.drain()
    result = service.result(ticket)
    assert result.ok, result.error
    return result.rows


def assert_fleet_matches(db, sql, shard_counts=(1, 2, 4), **config):
    want = baseline_rows(db, sql)
    for shards in shard_counts:
        fleet = make_fleet(db, shards=shards, **config)
        ticket = fleet.submit(sql)
        fleet.drain()
        result = fleet.result(ticket)
        assert result.ok, (shards, result.error)
        assert bags_equal(result.rows, want), (
            f"{shards} shards: {result.rows} != {want}"
        )


# -- partitioners ------------------------------------------------------------


def test_hash_partitioner_total_and_deterministic():
    part = HashPartitioner(4)
    values = [1, 7, "alpha", "2020-06-15", 3.25, True, -9]
    owners = [part.shard_of(v) for v in values]
    assert all(0 <= o < 4 for o in owners)
    assert owners == [part.shard_of(v) for v in values]  # replayable
    # bool hashes like its int value, not its repr
    assert part.shard_of(True) == part.shard_of(1)


def test_range_partitioner_covers_domain():
    part = RangePartitioner.from_values(list(range(100)), 4)
    counts = Counter(part.shard_of(v) for v in range(100))
    assert sum(counts.values()) == 100
    assert set(counts) == {0, 1, 2, 3}  # quantile cuts hit every shard
    # values outside the observed range still map to exactly one shard
    assert part.shard_of(-10**9) == 0
    assert part.shard_of(10**9) == 3


def test_range_partitioner_validates_bounds():
    with pytest.raises(Exception):
        RangePartitioner([3, 1], 3)  # unsorted
    with pytest.raises(Exception):
        RangePartitioner([1], 3)  # wrong arity


def test_every_row_lands_on_exactly_one_shard(dataset):
    for scheme in ("hash", "range"):
        spec = PartitionSpec.for_dataset(dataset, 3, scheme=scheme)
        slices = spec.split(dataset)
        table = dataset.tables[spec.table]
        split_total = sum(len(s.tables[spec.table].rows) for s in slices)
        assert split_total == len(table.rows)
        rebuilt = Counter(
            row for s in slices for row in s.tables[spec.table].rows
        )
        assert rebuilt == Counter(table.rows)
        # every other table is fully replicated on every shard
        for name, other in dataset.tables.items():
            if name == spec.table:
                continue
            for s in slices:
                assert s.tables[name].rows == other.rows


def test_spec_defaults_to_largest_table(dataset):
    spec = PartitionSpec.for_dataset(dataset, 2)
    largest = max(dataset.tables.values(), key=lambda t: len(t.rows))
    assert spec.table == largest.name


def test_spec_for_database_follows_partition_key(db):
    spec = PartitionSpec.for_database(db, 2)
    assert spec.table == "sales"
    assert spec.column == "id"  # Table.partition_key set by the loader


def test_range_spec_reuses_storage_spine():
    from repro.storage import StorageConfig

    db = Database.tpch(scale=0.002, seed=42, storage=StorageConfig())
    spec = PartitionSpec.for_database(db, 2, scheme="range",
                                      table="lineitem", column="l_orderkey")
    assert spec.scheme == "range"
    keys = db.catalog.tables["lineitem"].column_named("l_orderkey")
    owners = Counter(spec.partitioner.shard_of(k) for k in keys)
    assert set(owners) == {0, 1}
    # the cut points align with the physical clustering: each shard owns
    # a contiguous key range
    bound = spec.partitioner.bounds[0]
    for key in keys:
        assert spec.partitioner.shard_of(key) == (0 if key <= bound else 1)


# -- scatter/gather equivalence ----------------------------------------------


def test_scalar_aggregates_match(db):
    assert_fleet_matches(
        db, "select count(*) as c, sum(price) as s, min(price) as lo, "
            "max(price) as hi from sales"
    )


def test_avg_recombines_from_sum_and_count(db):
    sql = "select avg(price) as a, avg(prod_costs) as b from sales"
    plan = plan_route(sql, "sales")
    # the shard statement carries SUM and COUNT partials, never AVG
    assert "avg" not in plan.shard_sql.lower()
    assert "sum" in plan.shard_sql.lower()
    assert "count" in plan.shard_sql.lower()
    want = baseline_rows(db, sql)
    for shards in (2, 4):
        fleet = make_fleet(db, shards=shards)
        ticket = fleet.submit(sql)
        fleet.drain()
        got = fleet.result(ticket).rows
        assert len(got) == 1
        for g, w in zip(got[0], want[0]):
            assert g == pytest.approx(w, rel=1e-9)


def test_grouped_aggregates_match(db):
    assert_fleet_matches(
        db, "select category as g, count(*) as n, sum(price) as s, "
            "avg(price) as a from sales, products "
            "where sales.id = products.id group by category"
    )


def test_having_filters_merged_groups(db):
    assert_fleet_matches(
        db, "select category as g, count(*) as n from sales, products "
            "where sales.id = products.id group by category "
            "having count(*) >= 20"
    )


def test_empty_input_aggregate_identity(db):
    # no sale is that expensive: every shard contributes an empty
    # partial, and the gather must still emit the single identity row
    assert_fleet_matches(
        db, "select count(*) as c, sum(price) as s, min(price) as lo "
            "from sales where price > 100000"
    )


def test_gather_merges_order_by_limit(db):
    assert_fleet_matches(
        db, "select id as i, price as p from sales "
            "order by p desc, i limit 9"
    )
    assert_fleet_matches(
        db, "select category as g, sum(price) as s from sales, products "
            "where sales.id = products.id group by category "
            "order by s desc, g"
    )


def test_replicated_only_query_routes_to_one_shard(db):
    sql = "select count(*) as c from products"
    plan = plan_route(sql, "sales")
    assert not plan.scatter
    fleet = make_fleet(db, shards=3)
    ticket = fleet.submit(sql)
    fleet.drain()
    result = fleet.result(ticket)
    assert result.ok and not result.scattered
    assert len(result.shards) == 1
    assert result.rows == baseline_rows(db, sql)


def test_router_refuses_partitioned_subquery():
    with pytest.raises(FleetPlanError):
        plan_route(
            "select count(*) as c from products where exists "
            "(select id from sales where sales.id = products.id)",
            "sales",
        )


def test_fleet_matches_on_fuzz_dataset():
    dataset = random_dataset(7)
    db = None
    from repro.fuzz.dataset import build_database

    db = build_database(dataset)
    queries = [
        "select count(*) as c from fact",
        "select label as g, sum(qty) as s, avg(price) as a from fact "
        "group by label order by g",
        "select t1.id as c0, min(t1.mid_id) as c1 from fact as t1 "
        "group by t1.id having min(t1.mid_id) >= 3 order by c0 limit 5",
        "select max(label) as m from fact having max(label) >= 3",
    ]
    for sql in queries:
        want = baseline_rows(db, sql)
        for shards in (2, 4):
            fleet = Fleet.from_dataset(
                dataset, FleetConfig(shards=shards, workers=2,
                                     scheme="range" if shards == 4 else "hash"),
            )
            ticket = fleet.submit(sql)
            fleet.drain()
            result = fleet.result(ticket)
            assert result.ok, (sql, shards, result.error)
            assert bags_equal(result.rows, want), (sql, shards)


# -- tenant quotas -----------------------------------------------------------


def test_tenant_quota_sheds_with_stable_code(db):
    fleet = make_fleet(db, shards=2, tenant_quota=2)
    fleet.submit("select count(*) as c from sales", tenant="greedy")
    fleet.submit("select sum(price) as s from sales", tenant="greedy")
    with pytest.raises(ServiceError) as excinfo:
        fleet.submit("select min(price) as m from sales", tenant="greedy")
    assert excinfo.value.code == TENANT_QUOTA
    # other tenants are untouched by the shed
    polite = fleet.submit("select max(price) as m from sales", tenant="polite")
    results = fleet.drain()
    assert len(results) == 3
    assert fleet.result(polite).ok
    assert all(r.ok for r in results)
    # after draining, the quota window is free again
    again = fleet.submit("select count(*) as c from sales", tenant="greedy")
    fleet.drain()
    assert fleet.result(again).ok


# -- profile merging ---------------------------------------------------------


def run_mixed_workload(fleet, queries=12):
    rng = Random(11)
    templates = [
        "select count(*) as c from sales where price > {p}",
        "select category as g, sum(price) as s from sales, products "
        "where sales.id = products.id group by category",
        "select avg(price) as a from sales",
    ]
    items = [
        (f"tenant-{i % 2}", rng.choice(templates).format(
            p=round(rng.uniform(50, 400), 2)))
        for i in range(queries)
    ]
    return run_fleet_workload(fleet, items)


def test_merged_profile_accounts_every_sample(db):
    fleet = make_fleet(db, shards=3)
    results = run_mixed_workload(fleet)
    assert all(r.ok for r in results)
    merged = fleet.profile_snapshot()
    per_shard = [s.profile_snapshot() for s in fleet.services]
    assert merged.samples == sum(s.samples for s in per_shard)
    assert merged.queries == sum(s.queries for s in per_shard)
    assert merged.attributed_samples == sum(
        s.attributed_samples for s in per_shard
    )
    report = fleet_profile(fleet)
    assert report.samples == merged.samples
    text = report.render()
    assert "per shard:" in text and "per tenant:" in text
    assert {t.tenant for t in report.tenants} == {"tenant-0", "tenant-1"}


def test_profile_merge_is_associative(db):
    fleet = make_fleet(db, shards=3)
    run_mixed_workload(fleet)
    a, b, c = (s.profile_snapshot() for s in fleet.services)

    def signature(snapshot):
        return (
            snapshot.queries, snapshot.samples,
            snapshot.attributed_samples, snapshot.matched_samples,
            sorted(snapshot.latencies),
            sorted(snapshot.regions.items()),
            sorted(
                (fp, t.queries, t.samples, t.instructions,
                 sorted(t.operator_samples.items()))
                for fp, t in snapshot.templates.items()
            ),
        )

    left = a.merge(b.merge(c))
    right = a.merge(b).merge(c)
    assert signature(left) == signature(right)
    assert signature(merge_snapshots([a, b, c])) == signature(left)
    # merging is non-destructive: the inputs keep their own numbers
    assert a.samples + b.samples + c.samples == left.samples


# -- fault injection ---------------------------------------------------------


def test_killed_shard_fails_scatter_with_stable_code(db):
    fleet = make_fleet(db, shards=3)
    ticket = fleet.submit("select count(*) as c from sales")
    fleet.kill_shard(1)
    results = fleet.drain()  # must not hang on the dead shard
    assert len(results) == 1
    result = fleet.result(ticket)
    assert result.status == "failed"
    assert result.error_code == SHARD_FAILED
    assert result.lost_shards == [1]
    # the fleet keeps serving on the survivors
    after = fleet.submit("select count(*) as c from products")
    fleet.drain()
    assert fleet.result(after).ok


def test_killed_shard_degrades_when_partial_allowed(db):
    fleet = make_fleet(db, shards=3, allow_partial=True)
    sql = "select count(*) as c from sales"
    ticket = fleet.submit(sql)
    fleet.kill_shard(2)
    fleet.drain()
    result = fleet.result(ticket)
    assert result.status == "degraded"
    assert result.ok
    assert result.lost_shards == [2]
    # the degraded count covers exactly the surviving shards' rows
    survivors = sum(
        fleet.services[i].db.catalog.tables["sales"].row_count
        for i in (0, 1)
    )
    assert result.rows == [(survivors,)]
    full = baseline_rows(db, sql)[0][0]
    assert result.rows[0][0] < full


def test_single_shard_query_on_dead_shard_fails(db):
    fleet = make_fleet(db, shards=2)
    sql = "select count(*) as c from products"
    ticket = fleet.submit(sql)
    target = fleet.result(ticket) or fleet._pending[ticket]
    shard = list(fleet._pending[ticket].subtickets)[0]
    fleet.kill_shard(shard)
    fleet.drain()
    result = fleet.result(ticket)
    assert result.status == "failed"
    assert result.error_code == SHARD_FAILED
    _ = target


def test_cancel_propagates_to_all_shards(db):
    fleet = make_fleet(db, shards=3)
    ticket = fleet.submit("select sum(price) as s from sales")
    subtickets = dict(fleet._pending[ticket].subtickets)
    assert len(subtickets) == 3
    assert fleet.cancel(ticket)
    assert not fleet.cancel(ticket)  # idempotent: already cancelled
    fleet.drain()
    result = fleet.result(ticket)
    assert result.status == "cancelled"
    assert result.error_code == CANCELLED
    # every shard-local subquery was cancelled, none executed
    for shard, sub in subtickets.items():
        subresult = fleet.services[shard].result(sub)
        assert subresult.status == "cancelled"


def test_queue_full_scatter_rolls_back(db):
    fleet = make_fleet(db, shards=2, max_queue=2)
    for _ in range(2):
        fleet.submit("select count(*) as c from sales")
    with pytest.raises(ServiceError):
        for _ in range(8):
            fleet.submit("select count(*) as c from sales")
    # the shed submit left no orphaned shard subqueries: every pending
    # fleet query still has a live subticket on every shard
    counts = Counter(
        shard
        for query in fleet._pending.values()
        for shard in query.subtickets
    )
    assert counts[0] == counts[1] == len(fleet._pending)
    results = fleet.drain()
    assert all(r.ok for r in results)


# -- workload runner + CLI ---------------------------------------------------


def test_run_fleet_workload_retries_on_backpressure(db):
    fleet = make_fleet(db, shards=2, max_queue=3)
    items = [
        ("t", "select count(*) as c from sales where price > 10")
        for _ in range(10)
    ]
    results = run_fleet_workload(fleet, items)
    assert len(results) == 10
    assert all(r.ok for r in results)


def test_fleet_cli_smoke(capsys):
    from repro.__main__ import main

    code = main([
        "fleet", "--shards", "2", "--queries", "6",
        "--tenants", "2", "--report", "--strict",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "fleet of 2 shard(s)" in out
    assert "merged samples" in out
    assert "fleet profile" in out
