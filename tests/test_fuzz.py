"""Tests for the differential fuzzer itself: generator, oracle, shrinker.

The acceptance-style tests plant a deliberate miscompile via the
backend's fault-injection hook and demand that the oracle notices and the
shrinker reduces the repro to a trivial plan — the machinery must be able
to find and minimize a real bug before its green runs mean anything.
"""

import json
from random import Random

import pytest

from repro.errors import ReproError
from repro.fuzz import (
    Dataset,
    DifferentialOracle,
    QueryGenerator,
    Shrinker,
    bags_equal,
    build_database,
    extract_dataset,
    operator_count,
    random_dataset,
    run_fuzz,
)
from repro.fuzz.oracle import is_sorted
from repro.sql import ast, parse, unparse


@pytest.fixture(scope="module")
def fuzz_db():
    dataset = random_dataset(0)
    return dataset, build_database(dataset)


# -- dataset -----------------------------------------------------------------

def test_random_dataset_is_deterministic():
    a, b = random_dataset(7), random_dataset(7)
    assert a.to_json() == b.to_json()
    assert random_dataset(8).to_json() != a.to_json()


def test_dataset_json_round_trip():
    dataset = random_dataset(3)
    document = json.loads(dataset.dumps())
    rebuilt = Dataset.from_json(document)
    assert rebuilt.to_json() == dataset.to_json()


def test_dataset_has_fuzz_pathologies():
    dataset = random_dataset(0)
    # the mid table must carry zero-sentinel ("no parent") join keys
    assert 0 in dataset.tables["mid"].values_of("dim_id")
    assert dataset.foreign_keys


def test_build_and_extract_round_trip(fuzz_db):
    dataset, db = fuzz_db
    extracted = extract_dataset(db)
    db2 = build_database(extracted)
    sql = "select count(*) as c, sum(f.qty) as s from fact as f"
    assert db.execute(sql).rows == db2.execute(sql).rows


# -- unparse -----------------------------------------------------------------

def test_unparse_round_trip_preserves_shape():
    sql = (
        "select t.k as c0, sum(t.v * 2) as c1 from t as t "
        "where (t.k between 1 and 5) and (t.tag not like 'a%') "
        "group by t.k having count(*) > 1 order by c0 desc limit 3"
    )
    stmt = parse(sql)
    rendered = unparse(stmt)
    again = parse(rendered)
    assert unparse(again) == rendered


def test_unparse_escapes_and_floats():
    stmt = parse("select count(*) as c from t as t where t.s = 'it''s'")
    assert "'it''s'" in unparse(stmt)
    from repro.sql.unparse import unparse_expression

    literal = unparse_expression(ast.NumberLit(1e-8))
    assert "e" not in literal and "E" not in literal  # no exponent notation
    assert float(literal) == 1e-8


# -- generator ---------------------------------------------------------------

def test_generator_is_deterministic():
    dataset = random_dataset(1)
    a = QueryGenerator(dataset, Random(5))
    b = QueryGenerator(dataset, Random(5))
    assert [a.generate().sql for _ in range(10)] == [
        b.generate().sql for _ in range(10)
    ]


def test_generator_emits_mostly_bindable_queries(fuzz_db):
    dataset, db = fuzz_db
    generator = QueryGenerator(dataset, Random(11))
    rejected = 0
    for _ in range(60):
        query = generator.generate()
        try:
            db._plan(query.sql)
        except ReproError:
            rejected += 1
    assert rejected <= 3  # ~99% of generated queries must bind


def test_generator_covers_the_grammar(fuzz_db):
    dataset, _ = fuzz_db
    generator = QueryGenerator(dataset, Random(2))
    seen = set()
    for _ in range(150):
        seen |= generator.generate().features
    assert {"join", "group_by", "aggregate", "filter", "order_by"} <= seen
    assert "having" in seen and "case" in seen


# -- oracle comparison helpers ----------------------------------------------

def test_bags_equal_is_order_insensitive():
    assert bags_equal([(1, "a"), (2, "b")], [(2, "b"), (1, "a")])
    assert not bags_equal([(1,)], [(1,), (1,)])
    assert not bags_equal([(1,), (1,)], [(1,), (2,)])


def test_bags_equal_tolerates_float_noise():
    assert bags_equal([(1.0000000001,)], [(1.0,)])
    assert not bags_equal([(1.01,)], [(1.0,)])


def test_is_sorted_checks_keys_with_ties():
    rows = [(1, "b"), (1, "a"), (2, "z")]
    assert is_sorted(rows, [(0, True)])
    assert not is_sorted(rows, [(0, True), (1, True)])
    assert is_sorted(rows, [(0, True), (1, False)])


# -- oracle ------------------------------------------------------------------

def test_oracle_agrees_on_healthy_engine(fuzz_db):
    dataset, db = fuzz_db
    generator = QueryGenerator(dataset, Random(21))
    oracle = DifferentialOracle(db, max_hints=2, check_pgo=False)
    checked = 0
    for _ in range(8):
        query = generator.generate()
        result = oracle.check(
            query.sql, aliases=query.aliases, ordered_by=query.ordered_by
        )
        if result.rejected:
            continue
        checked += 1
        assert not result.disagreements, (
            query.sql,
            [(d.config, d.reason) for d in result.disagreements],
        )
    assert checked >= 6


def test_oracle_rejects_unbindable_queries(fuzz_db):
    _, db = fuzz_db
    result = DifferentialOracle(db).check("select nope from nowhere as n")
    assert result.rejected
    assert "Error" in result.reject_reason
    ambiguous = DifferentialOracle(db).check(
        "select id from dim as a, mid as b where a.id = b.dim_id"
    )
    assert ambiguous.rejected
    assert "SqlError" in ambiguous.reject_reason


def test_oracle_skips_disconnected_hints(fuzz_db):
    _, db = fuzz_db
    # dim and fact are not directly joinable: every hint placing them
    # adjacently without mid is a PlanError, reported as skipped
    oracle = DifferentialOracle(db, max_hints=6, check_pgo=False)
    result = oracle.check(
        "select count(*) as c from dim as t0, mid as t1, fact as t2 "
        "where (t0.id = t1.dim_id) and (t1.id = t2.mid_id)",
        aliases=["t0", "t1", "t2"],
    )
    assert not result.disagreements
    kinds = {o.config: o.kind for o in result.outcomes}
    assert any(
        kind == "skipped" for config, kind in kinds.items()
        if config.startswith("hint[")
    )


def test_oracle_detects_planted_miscompile(fuzz_db):
    dataset, db = fuzz_db
    generator = QueryGenerator(dataset, Random(7))
    oracle = DifferentialOracle(
        db, inject_fault="invert-first-cmpeq", check_pgo=False
    )
    caught = 0
    for _ in range(10):
        query = generator.generate()
        result = oracle.check(
            query.sql, aliases=query.aliases, ordered_by=query.ordered_by
        )
        if not result.rejected and result.disagreements:
            caught += 1
    assert caught >= 3  # the fault must not be invisible


# -- shrinker ----------------------------------------------------------------

def test_shrinker_returns_none_when_nothing_disagrees(fuzz_db):
    dataset, _ = fuzz_db
    shrinker = Shrinker(
        dataset, "select count(*) as c from fact as t0", check_pgo=False
    )
    assert shrinker.run() is None


def test_shrinker_minimizes_planted_miscompile_to_trivial_plan():
    """Acceptance: an injected miscompile shrinks to <= 3 operators."""
    dataset = random_dataset(0)
    db = build_database(dataset)
    generator = QueryGenerator(dataset, Random(7))
    oracle = DifferentialOracle(
        db, inject_fault="invert-first-cmpeq", check_pgo=False
    )
    for _ in range(30):
        query = generator.generate()
        result = oracle.check(
            query.sql, aliases=query.aliases, ordered_by=query.ordered_by
        )
        if result.rejected or not result.disagreements:
            continue
        shrunk = Shrinker(
            dataset, query.sql, inject_fault="invert-first-cmpeq"
        ).run()
        assert shrunk is not None, "shrinker lost the repro"
        assert shrunk.operators <= 3, shrunk.sql
        assert shrunk.row_total <= dataset.row_total()
        # the minimized repro must still disagree on a fresh oracle
        db2 = build_database(shrunk.dataset)
        check = DifferentialOracle(
            db2, inject_fault="invert-first-cmpeq", check_pgo=False
        ).check(shrunk.sql)
        assert check.disagreements
        return
    pytest.fail("no query tripped over the planted miscompile")


def test_operator_count_on_simple_plans(fuzz_db):
    _, db = fuzz_db
    assert operator_count(db, "select count(*) as c from dim as d") == 3
    assert operator_count(db, "select nope from nowhere as n") >= 10**6


# -- harness -----------------------------------------------------------------

def test_run_fuzz_small_budget_is_clean():
    report = run_fuzz(5, 6, max_hints=2, check_pgo=False, rotate_every=3)
    assert report.ok
    assert report.queries == 6
    assert report.datasets == 2
    # reference, parallel, interpreted, unoptimized, groupjoin at minimum
    assert report.executions >= 6 * 5


def test_run_fuzz_persists_minimized_failures(tmp_path):
    report = run_fuzz(
        3, 2, inject_fault="invert-first-cmpeq", check_pgo=False,
        max_hints=0, corpus_dir=tmp_path,
    )
    assert not report.ok
    failure = report.failures[0]
    assert failure.shrunk_sql is not None
    assert failure.corpus_path is not None
    document = json.loads((tmp_path / f"fuzz-seed3-q{failure.index}.json").read_text())
    assert document["sql"] == failure.shrunk_sql
    assert document["dataset"]["tables"]
    assert document["original_sql"] == failure.sql


def test_run_fuzz_respects_time_limit():
    report = run_fuzz(1, 10_000, time_limit=2.0, check_pgo=False, max_hints=0)
    assert report.queries < 10_000
    assert report.elapsed < 20.0
