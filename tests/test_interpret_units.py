"""Unit tests for the reference interpreter's expression evaluation."""

import pytest

from repro.catalog.schema import DataType
from repro.errors import PlanError
from repro.plan.expr import (
    IU,
    BinaryExpr,
    CaseExpr,
    CompareExpr,
    ConstExpr,
    FuncExpr,
    IURef,
    InSetExpr,
    LogicalExpr,
    NotExpr,
)
from repro.plan.interpret import evaluate

I = DataType.INT
D = DataType.DECIMAL
F = DataType.FLOAT
B = DataType.BOOL


def c(value, dtype=I):
    return ConstExpr(value, dtype)


def test_arithmetic_int():
    assert evaluate(BinaryExpr("+", c(2), c(3)), {}) == 5
    assert evaluate(BinaryExpr("-", c(2), c(3)), {}) == -1
    assert evaluate(BinaryExpr("*", c(4), c(3)), {}) == 12


def test_decimal_multiplication_rescales_and_truncates():
    # 1.50 * 0.33 = 0.495 -> 49 cents (truncated toward zero)
    assert evaluate(BinaryExpr("*", c(150, D), c(33, D)), {}) == 49
    # negative truncation toward zero, matching the VM's SDIV
    assert evaluate(BinaryExpr("*", c(-150, D), c(33, D)), {}) == -49


def test_decimal_by_int_keeps_cents():
    assert evaluate(BinaryExpr("*", c(150, D), c(2, I)), {}) == 300


def test_division_normalizes_to_natural_units():
    # 1.50 / 3 = 0.5 (not 50)
    assert evaluate(BinaryExpr("/", c(150, D), c(3, I)), {}) == pytest.approx(0.5)
    assert evaluate(BinaryExpr("/", c(7, I), c(2, I)), {}) == pytest.approx(3.5)


def test_float_result_normalizes_decimal_operands():
    expr = BinaryExpr("+", c(150, D), c(0.25, F))
    assert evaluate(expr, {}) == pytest.approx(1.75)


def test_comparisons_and_logic():
    assert evaluate(CompareExpr("<", c(1), c(2)), {}) == 1
    assert evaluate(CompareExpr("<>", c(1), c(1)), {}) == 0
    both = LogicalExpr("and", (CompareExpr("<", c(1), c(2)),
                               CompareExpr(">", c(1), c(2))))
    assert evaluate(both, {}) == 0
    either = LogicalExpr("or", (CompareExpr("<", c(1), c(2)),
                                CompareExpr(">", c(1), c(2))))
    assert evaluate(either, {}) == 1
    assert evaluate(NotExpr(CompareExpr("=", c(1), c(1))), {}) == 0


def test_in_set_and_case():
    iu = IU("x", I)
    member = InSetExpr(IURef(iu), frozenset({1, 5, 9}))
    assert evaluate(member, {iu.id: 5}) == 1
    assert evaluate(member, {iu.id: 4}) == 0
    case = CaseExpr(
        whens=((CompareExpr(">", IURef(iu), c(0)), c(10)),),
        default=c(20),
    )
    assert evaluate(case, {iu.id: 3}) == 10
    assert evaluate(case, {iu.id: -3}) == 20


def test_functions():
    import datetime

    day = datetime.date(1995, 7, 1).toordinal()
    assert evaluate(FuncExpr("year", c(day, DataType.DATE)), {}) == 1995
    assert evaluate(FuncExpr("to_cents", c(3)), {}) == 300
    assert evaluate(FuncExpr("float", c(3)), {}) == 3.0


def test_groupjoin_rejects_duplicate_build_keys():
    from repro.plan.interpret import Interpreter
    from repro.plan.physical import PlannerOptions, plan_physical
    from repro.sql import parse
    from repro.sql.binder import Binder

    from tests.helpers import small_catalog

    catalog = small_catalog()
    # group by kinds.name joined from items side with duplicate kinds rows
    catalog.tables["kinds"].encoded = True  # already encoded by fixture
    bound = Binder(catalog).bind(parse(
        "select i.kind, count(*) n from items i, items i2 "
        "where i.kind = i2.kind group by i.kind"
    ))
    physical = plan_physical(
        bound.plan, bound.model, PlannerOptions(enable_groupjoin=True)
    )
    from repro.plan.physical import PhysicalGroupJoin

    if any(isinstance(n, PhysicalGroupJoin) for n in physical.walk()):
        with pytest.raises(PlanError, match="unique"):
            Interpreter().run(physical)
