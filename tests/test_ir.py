"""Unit tests for the IR layer: builder, verifier, printer."""

import pytest

from repro.errors import IRError
from repro.ir import IRBuilder, Module, Type, print_function, verify_function


def make_fn(name="f", params=None, ret=Type.VOID):
    module = Module("test")
    fn = module.new_function(name, params or [], ret)
    return module, fn, IRBuilder(fn)


def test_builder_emits_into_current_block():
    _, fn, b = make_fn()
    entry = b.block("entry")
    b.set_block(entry)
    v = b.add(b.const(1), b.const(2))
    b.ret()
    assert entry.instructions[0] is v
    verify_function(fn)


def test_listener_sees_every_instruction():
    _, fn, b = make_fn()
    got = []
    b.listeners.append(got.append)
    b.set_block(b.block("entry"))
    b.add(b.const(1), b.const(2))
    b.ret()
    assert [i.op for i in got] == ["add", "ret"]


def test_duplicate_block_names_are_uniquified():
    _, fn, b = make_fn()
    b1 = b.block("loop")
    b2 = b.block("loop")
    assert b1.name != b2.name


def test_emit_after_terminator_rejected():
    _, fn, b = make_fn()
    b.set_block(b.block("entry"))
    b.ret()
    with pytest.raises(IRError):
        b.add(b.const(1), b.const(1))


def test_type_checks():
    _, fn, b = make_fn()
    b.set_block(b.block("entry"))
    with pytest.raises(IRError):
        b.load(b.const(8))  # not a pointer
    with pytest.raises(IRError):
        b.gep(b.const(8), None)
    ptr = b.const(8, Type.PTR)
    v = b.load(ptr)
    with pytest.raises(IRError):
        b.condbr(v, b.block("a"), b.block("b"))  # i64 cond
    cmp = b.cmp("cmpeq", v, b.const(0))
    assert cmp.type is Type.BOOL


def test_verifier_rejects_missing_terminator():
    _, fn, b = make_fn()
    b.set_block(b.block("entry"))
    b.add(b.const(1), b.const(2))
    with pytest.raises(IRError, match="terminator"):
        verify_function(fn)


def test_verifier_rejects_phi_after_nonphi():
    _, fn, b = make_fn()
    entry = b.block("entry")
    body = b.block("body")
    b.set_block(entry)
    b.br(body)
    b.set_block(body)
    b.add(b.const(1), b.const(1))
    phi = b.phi(Type.I64)
    b.add_incoming(phi, b.const(0), entry)
    b.ret()
    # the builder keeps phis first; force the malformed order by hand
    body.instructions.remove(phi)
    body.instructions.insert(1, phi)
    with pytest.raises(IRError, match="phi"):
        verify_function(fn)


def test_verifier_rejects_mismatched_phi_incomings():
    _, fn, b = make_fn()
    entry = b.block("entry")
    body = b.block("body")
    b.set_block(entry)
    b.br(body)
    b.set_block(body)
    phi = b.phi(Type.I64)
    # no incoming for entry
    b.ret()
    with pytest.raises(IRError, match="phi"):
        verify_function(fn)


def test_verifier_rejects_use_before_def():
    _, fn, b = make_fn("f", [("p", Type.I64)])
    entry = b.block("entry")
    other = b.block("other")
    join = b.block("join")
    b.set_block(entry)
    cond = b.cmp("cmpeq", fn.params[0], b.const(0))
    b.condbr(cond, other, join)
    b.set_block(other)
    v = b.add(b.const(1), b.const(1))
    b.br(join)
    b.set_block(join)
    b.add(v, b.const(1))  # v does not dominate join
    b.ret()
    with pytest.raises(IRError, match="dominated"):
        verify_function(fn)


def test_verifier_accepts_loop_with_phi():
    _, fn, b = make_fn("loop_fn", [("n", Type.I64)])
    entry = b.block("entry")
    loop = b.block("loop")
    exit_ = b.block("exit")
    n = fn.params[0]
    b.set_block(entry)
    b.br(loop)
    b.set_block(loop)
    i = b.phi(Type.I64)
    next_i = b.add(i, b.const(1))
    b.add_incoming(i, b.const(0), entry)
    b.add_incoming(i, next_i, loop)
    done = b.cmp("cmpge", next_i, n)
    b.condbr(done, exit_, loop)
    b.set_block(exit_)
    b.ret()
    verify_function(fn)


def test_printer_shapes():
    _, fn, b = make_fn("pipeline_0", [("state", Type.PTR)])
    entry = b.block("entry")
    b.set_block(entry)
    state = fn.params[0]
    addr = b.gep(state, None, offset=320)
    v = b.load(addr, comment="directory lookup")
    b.store(addr, b.add(v, b.const(1)))
    b.ret()
    text = print_function(fn)
    assert "define void @pipeline_0(ptr %state)" in text
    assert "gep ptr %state, +320" in text
    assert "; directory lookup" in text


def test_module_unique_ids_and_counts():
    module = Module("m")
    f1 = module.new_function("a")
    f2 = module.new_function("b")
    b1, b2 = IRBuilder(f1), IRBuilder(f2)
    b1.set_block(b1.block("entry"))
    b2.set_block(b2.block("entry"))
    x = b1.add(b1.const(1), b1.const(1))
    y = b2.add(b2.const(2), b2.const(2))
    b1.ret()
    b2.ret()
    assert x.id != y.id
    assert module.instruction_count() == 4
    with pytest.raises(IRError):
        module.new_function("a")
