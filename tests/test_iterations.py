"""Tests for iterative dataflow support (§4.2.6)."""

import pytest

from repro import ProfilerConfig
from repro.data.queries import FIG9_QUERY


def test_repeats_produce_same_rows(tpch_db):
    once = tpch_db.execute(FIG9_QUERY.sql)
    profile = tpch_db.profile(FIG9_QUERY.sql, repeats=3)
    assert profile.result.rows == once.rows


def test_iteration_detection_finds_all_repeats(tpch_db):
    profile = tpch_db.profile(FIG9_QUERY.sql, repeats=4)
    iterations = profile.iterations()
    assert len(iterations) == 4
    # iterations partition the sample stream in time order
    for earlier, later in zip(iterations, iterations[1:]):
        assert earlier.end_tsc <= later.start_tsc + 1
    counts = [i.samples for i in iterations]
    assert max(counts) < 1.5 * min(counts), "iterations should be similar"


def test_single_run_is_one_iteration(tpch_db):
    profile = tpch_db.profile(FIG9_QUERY.sql)
    assert len(profile.iterations()) == 1


def test_iteration_report_text(tpch_db):
    profile = tpch_db.profile(FIG9_QUERY.sql, repeats=2)
    text = profile.iteration_report()
    assert "2 iteration(s)" in text
    assert text.count("join#") >= 1


def test_zoom_onto_one_iteration(tpch_db):
    profile = tpch_db.profile(FIG9_QUERY.sql, repeats=3)
    iterations = profile.iterations()
    middle = iterations[1]
    zoomed = profile.zoom(middle.start_tsc, middle.end_tsc)
    operator_samples = sum(
        1 for a in zoomed.attributions if a.category == "operator"
    )
    assert operator_samples == middle.samples
    costs = zoomed.operator_costs()
    assert costs and sum(costs.values()) == pytest.approx(1.0)


def test_repeats_validation(tpch_db):
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        tpch_db.profile(FIG9_QUERY.sql, repeats=0)


def test_repeats_scale_cycles(tpch_db):
    one = tpch_db.profile(FIG9_QUERY.sql, ProfilerConfig(period=1 << 40))
    three = tpch_db.profile(
        FIG9_QUERY.sql, ProfilerConfig(period=1 << 40), repeats=3
    )
    ratio = three.result.cycles / one.result.cycles
    assert 2.5 < ratio < 3.5
