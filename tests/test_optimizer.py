"""Tests for cardinality estimation, join ordering, and physical planning."""

import pytest

from repro.errors import PlanError
from repro.plan.cardinality import CardinalityModel
from repro.plan.interpret import Interpreter
from repro.plan.logical import LogicalFilter, LogicalJoin, LogicalScan
from repro.plan.physical import (
    PhysicalGroupBy,
    PhysicalGroupJoin,
    PhysicalHashJoin,
    PlannerOptions,
    plan_physical,
)
from repro.sql import parse
from repro.sql.binder import Binder

from tests.helpers import small_catalog


def bind(catalog, sql, hint=None):
    return Binder(catalog).bind(parse(sql), join_order_hint=hint)


def test_scan_cardinality_is_row_count():
    catalog = small_catalog()
    bound = bind(catalog, "select id from items")
    model = CardinalityModel()
    scan = next(
        n for n in bound.plan.walk() if isinstance(n, LogicalScan)
    )
    assert model.estimate(scan) == 6


def test_equality_selectivity_uses_ndv():
    catalog = small_catalog()
    bound = bind(catalog, "select id from items where kind = 'apple'")
    model = CardinalityModel()
    filt = next(n for n in bound.plan.walk() if isinstance(n, LogicalFilter))
    # 3 distinct kinds -> 6/3 = 2 expected rows
    assert model.estimate(filt) == pytest.approx(2.0)


def test_range_selectivity_interpolates():
    catalog = small_catalog()
    bound = bind(catalog, "select id from items where id <= 3")
    model = CardinalityModel()
    filt = next(n for n in bound.plan.walk() if isinstance(n, LogicalFilter))
    estimate = model.estimate(filt)
    assert 1.5 <= estimate <= 4.0


def test_join_cardinality_divides_by_key_ndv():
    catalog = small_catalog()
    bound = bind(
        catalog, "select i.id from items i, kinds k where i.kind = k.name"
    )
    model = CardinalityModel()
    join = next(n for n in bound.plan.walk() if isinstance(n, LogicalJoin))
    # 6 * 3 / max(ndv) = 18/3 = 6
    assert model.estimate(join) == pytest.approx(6.0)


def test_hint_controls_join_shape():
    catalog = small_catalog()
    sql = "select count(*) c from items i, kinds k where i.kind = k.name"
    for hint in (["i", "k"], ["k", "i"]):
        bound = bind(catalog, sql, hint=hint)
        join = next(n for n in bound.plan.walk() if isinstance(n, LogicalJoin))
        first = hint[0]
        scan = join.left
        while not isinstance(scan, LogicalScan):
            scan = scan.children()[0]
        assert scan.alias == first


def test_bad_hints_rejected():
    catalog = small_catalog()
    sql = "select count(*) c from items i, kinds k where i.kind = k.name"
    with pytest.raises(PlanError):
        bind(catalog, sql, hint=["i"])
    with pytest.raises(PlanError):
        bind(catalog, sql, hint=["i", "zzz"])


def test_build_side_is_smaller_input():
    catalog = small_catalog()
    bound = bind(
        catalog, "select i.id from items i, kinds k where i.kind = k.name"
    )
    physical = plan_physical(bound.plan, bound.model)
    join = next(n for n in physical.walk() if isinstance(n, PhysicalHashJoin))
    # kinds (3 rows) should be the build side, items (6 rows) the probe
    from repro.plan.physical import PhysicalScan

    build = join.build
    while not isinstance(build, PhysicalScan):
        build = build.children()[0]
    assert build.alias == "k"


def test_groupjoin_requires_unique_build_key():
    catalog = small_catalog()
    # grouping items by kind over the join with kinds: kinds.name is unique
    sql = (
        "select k.name, sum(i.price) s from items i, kinds k "
        "where i.kind = k.name group by k.name"
    )
    bound = bind(catalog, sql)
    fused = plan_physical(bound.plan, bound.model, PlannerOptions(enable_groupjoin=True))
    assert any(isinstance(n, PhysicalGroupJoin) for n in fused.walk())
    plain = plan_physical(bind(catalog, sql).plan, bound.model)
    assert not any(isinstance(n, PhysicalGroupJoin) for n in plain.walk())


def test_groupjoin_not_applied_when_keys_mismatch():
    catalog = small_catalog()
    # grouping by a non-join column: fusion must not trigger
    sql = (
        "select i.sold, sum(i.price) s from items i, kinds k "
        "where i.kind = k.name group by i.sold"
    )
    bound = bind(catalog, sql)
    physical = plan_physical(bound.plan, bound.model, PlannerOptions(enable_groupjoin=True))
    assert not any(isinstance(n, PhysicalGroupJoin) for n in physical.walk())
    assert any(isinstance(n, PhysicalGroupBy) for n in physical.walk())


def test_groupjoin_matches_plain_groupby_results():
    catalog = small_catalog()
    sql = (
        "select k.name, sum(i.price) s, count(*) n from items i, kinds k "
        "where i.kind = k.name group by k.name order by k.name"
    )
    bound_fused = bind(catalog, sql)
    fused_plan = plan_physical(
        bound_fused.plan, bound_fused.model, PlannerOptions(enable_groupjoin=True)
    )
    bound_plain = bind(catalog, sql)
    plain_plan = plan_physical(bound_plain.plan, bound_plain.model)
    fused_rows = Interpreter().run(fused_plan)
    plain_rows = Interpreter().run(plain_plan)
    assert fused_rows == plain_rows


def test_residual_predicate_lands_on_join():
    catalog = small_catalog()
    sql = (
        "select count(*) c from items i, kinds k "
        "where i.kind = k.name and (i.price > 1.00 or k.tasty = 1)"
    )
    bound = bind(catalog, sql)
    join = next(n for n in bound.plan.walk() if isinstance(n, LogicalJoin))
    assert join.residual is not None


def test_single_table_filters_are_pushed_down():
    catalog = small_catalog()
    sql = (
        "select count(*) c from items i, kinds k "
        "where i.kind = k.name and i.price > 1.00 and k.tasty = 1"
    )
    bound = bind(catalog, sql)
    join = next(n for n in bound.plan.walk() if isinstance(n, LogicalJoin))
    assert join.residual is None
    filters = [n for n in bound.plan.walk() if isinstance(n, LogicalFilter)]
    assert len(filters) == 2  # one per side, below the join
