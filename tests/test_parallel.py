"""Tests for morsel-driven multicore execution (§5's multicore support).

Every worker is a simulated core with its own clock, caches, branch
predictor, and PMU sample buffer; morsels are dispatched greedily to the
least-loaded worker; pipelines end in barriers.
"""

import pytest

from repro import Database, ProfilerConfig
from repro.data.queries import ALL_QUERIES, FIG9_QUERY

from tests.conftest import rows_match


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_results_match_serial(tpch_db, workers):
    for name in ("q1", "q6", "q12", "q14"):
        sql = ALL_QUERIES[name].sql
        serial = tpch_db.execute(sql)
        parallel = tpch_db.execute(sql, workers=workers)
        assert rows_match(parallel.rows, serial.rows), name


def test_parallel_join_query_matches(tpch_db):
    serial = tpch_db.execute(FIG9_QUERY.sql)
    parallel = tpch_db.execute(FIG9_QUERY.sql, workers=3)
    assert rows_match(parallel.rows, serial.rows)


def test_parallel_is_faster_in_wall_clock(tpch_db):
    sql = ALL_QUERIES["q1"].sql
    serial = tpch_db.execute(sql)
    parallel = tpch_db.execute(sql, workers=4)
    # wall time (slowest worker) drops; total instructions stay comparable
    assert parallel.cycles < serial.cycles * 0.6
    assert parallel.instructions == pytest.approx(serial.instructions, rel=0.05)


def test_parallel_speedup_scales(tpch_db):
    sql = ALL_QUERIES["q1"].sql
    times = {w: tpch_db.execute(sql, workers=w).cycles for w in (1, 2, 4)}
    assert times[2] < times[1]
    assert times[4] < times[2]
    speedup4 = times[1] / times[4]
    assert 2.0 < speedup4 <= 4.5


def test_workers_validation(tpch_db):
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        tpch_db.execute("select count(*) c from nation", workers=0)


def test_parallel_profile_merges_worker_samples(tpch_db):
    profile = tpch_db.profile(FIG9_QUERY.sql, workers=3)
    assert profile.workers == 3
    worker_ids = {a.worker for a in profile.attributions}
    assert len(worker_ids) >= 2, "several workers must have taken samples"
    # merged stream is time-ordered and reports still work
    tscs = [a.sample.tsc for a in profile.attributions]
    assert tscs == sorted(tscs)
    costs = profile.operator_costs()
    assert sum(costs.values()) == pytest.approx(1.0)
    summary = profile.attribution_summary()
    assert summary.attributed_share > 0.9


def test_parallel_profile_attribution_matches_serial_shape(tpch_db):
    serial = tpch_db.profile(FIG9_QUERY.sql)
    parallel = tpch_db.profile(FIG9_QUERY.sql, workers=4)
    serial_costs = {op.kind: s for op, s in serial.operator_costs().items()}
    parallel_costs = {op.kind: s for op, s in parallel.operator_costs().items()}
    for kind in ("hashjoin", "groupby"):
        assert parallel_costs.get(kind, 0) == pytest.approx(
            serial_costs.get(kind, 0), abs=0.15
        )


def test_parallel_ordered_output_preserved(tpch_db):
    sql = (
        "select l_orderkey, sum(l_quantity) q from lineitem "
        "group by l_orderkey order by q desc, l_orderkey limit 25"
    )
    serial = tpch_db.execute(sql)
    parallel = tpch_db.execute(sql, workers=4)
    assert parallel.rows == serial.rows  # sorted output stays ordered


def test_worker_timeline_render(tpch_db):
    from repro.profiling.reports import render_worker_timeline

    profile = tpch_db.profile(ALL_QUERIES["q1"].sql, workers=3)
    text = render_worker_timeline(profile, bins=20)
    assert text.count("worker") >= 2
    lanes = [line for line in text.splitlines() if line.startswith("worker")]
    widths = {len(line) for line in lanes}
    assert len(widths) == 1  # aligned lanes


def test_parallel_groupjoin(tpch_db):
    from repro import PlannerOptions

    sql = (
        "select o_orderkey, sum(l_extendedprice) s from orders, lineitem "
        "where o_orderkey = l_orderkey group by o_orderkey"
    )
    options = PlannerOptions(enable_groupjoin=True)
    serial = tpch_db.execute(sql, planner_options=options)
    parallel = tpch_db.execute(sql, planner_options=options, workers=3)
    assert rows_match(parallel.rows, serial.rows)


def test_parallel_with_repeats(tpch_db):
    """Morsel parallelism and iterative execution compose."""
    profile = tpch_db.profile(ALL_QUERIES["q1"].sql, workers=3, repeats=2)
    assert profile.workers == 3
    iterations = profile.iterations()
    assert len(iterations) == 2
    assert profile.attribution_summary().attributed_share > 0.9
