"""Tests for the profile-guided optimization subsystem (repro.pgo)."""

import json

import pytest

from repro import Database
from repro.backend.feedback import BackendFeedback
from repro.backend.isel import select_function
from repro.backend.regalloc import _vreg_weights, allocate_function
from repro.data.queries import ALL_QUERIES
from repro.errors import ReproError
from repro.ir import IRBuilder, Module, Type
from repro.pgo import (
    FeedbackCardinalityModel,
    ProfileStore,
    QueryFeedback,
    cardinality_key,
    extract_feedback,
    fingerprint,
    plan_signature,
)
from repro.pgo.feedback import BranchStats, CardinalityObservation, ir_position_keys
from repro.plan.interpret import Interpreter

# the Fig. 10/11 join-order pair: two hinted plans the default model cannot
# tell apart, ideal for exercising the feedback loop
PAIR_SQL = """
select sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, orders, partsupp
where l_orderkey = o_orderkey and l_partkey = ps_partkey
  and l_suppkey = ps_suppkey
  and o_orderdate < date '1994-06-01'
"""
ORDERS_FIRST = ["lineitem", "orders", "partsupp"]
PARTSUPP_FIRST = ["lineitem", "partsupp", "orders"]


@pytest.fixture(scope="module")
def db():
    """A private TPC-H database: PGO mutates engine state (store, cache)."""
    return Database.tpch(scale=0.001, seed=42)


# -- stable keys ---------------------------------------------------------


def test_fingerprint_normalizes_whitespace_and_case():
    assert fingerprint("select  1") == fingerprint("  SELECT 1 ")
    assert fingerprint("select 1") != fingerprint("select 2")
    assert len(fingerprint("select 1")) == 16


def test_cardinality_keys_stable_across_recompiles(db):
    sql = ALL_QUERIES["q5"].sql

    def keys(physical):
        return sorted(
            key
            for key in (cardinality_key(op) for op in physical.walk())
            if key is not None
        )

    _, first = db._plan(sql)
    _, second = db._plan(sql)
    # fresh op/IU ids everywhere, identical structural keys
    assert keys(first) == keys(second)


def test_cardinality_key_invariant_under_join_order(db):
    _, a = db._plan(PAIR_SQL, join_order_hint=ORDERS_FIRST)
    _, b = db._plan(PAIR_SQL, join_order_hint=PARTSUPP_FIRST)

    def key_set(physical):
        return {
            cardinality_key(op)
            for op in physical.walk()
            if op.kind == "scan"
        }

    # scans keep their keys no matter how the joins above them are ordered
    assert key_set(a) == key_set(b)


def test_plan_signature_distinguishes_plans(db):
    _, a = db._plan(PAIR_SQL, join_order_hint=ORDERS_FIRST)
    _, b = db._plan(PAIR_SQL, join_order_hint=PARTSUPP_FIRST)
    _, a2 = db._plan(PAIR_SQL, join_order_hint=ORDERS_FIRST)
    assert plan_signature(a) != plan_signature(b)
    assert plan_signature(a) == plan_signature(a2)


# -- feedback extraction -------------------------------------------------


def test_extracted_cardinalities_match_interpreter(db):
    sql = ALL_QUERIES["q5"].sql
    store = db.enable_pgo()
    profile = db.profile(sql, pgo=True)
    feedback = store.feedback(sql)
    assert feedback is not None and feedback.cardinalities

    bound, physical = db._plan(sql)
    interpreter = Interpreter()
    interpreter.run(physical)
    truth = {}
    for op in physical.walk():
        key = cardinality_key(op)
        count = interpreter.tuple_counts.get(op.op_id)
        if key is not None and count is not None:
            truth[key] = max(count, truth.get(key, 0))

    for key, observation in feedback.cardinalities.items():
        assert key in truth
        assert observation.rows == truth[key]
    # the planner's estimate rides along for reporting
    assert any(o.estimate > 0 for o in feedback.cardinalities.values())


def test_feedback_merge_across_runs():
    first = QueryFeedback(
        sql="q", plan_signature="p", runs=1,
        cardinalities={"scan|t": CardinalityObservation(rows=10.0)},
        branches={"f|b|0": BranchStats(cond_true=5, total=10)},
        hotness={"f|b|1": 3.0},
    )
    second = QueryFeedback(
        sql="q", plan_signature="p", runs=1,
        cardinalities={"scan|t": CardinalityObservation(rows=20.0)},
        branches={"f|b|0": BranchStats(cond_true=10, total=10)},
        hotness={"f|b|1": 5.0},
    )
    merged = first.merge(second)
    assert merged.runs == 2
    assert merged.cardinalities["scan|t"].rows == 15.0  # run-weighted mean
    assert merged.branches["f|b|0"].total == 20
    assert merged.hotness["f|b|1"] == 8.0

    # a different plan invalidates plan-shaped feedback but keeps counts
    other_plan = QueryFeedback(
        sql="q", plan_signature="OTHER", runs=1,
        cardinalities={"scan|t": CardinalityObservation(rows=30.0)},
        branches={"f|b|9": BranchStats(cond_true=1, total=4)},
    )
    moved = merged.merge(other_plan)
    assert moved.plan_signature == "OTHER"
    assert set(moved.branches) == {"f|b|9"}
    assert moved.cardinalities["scan|t"].runs == 3


def test_feedback_json_roundtrip():
    feedback = QueryFeedback(
        sql="select 1", plan_signature="abc", runs=3,
        cardinalities={"scan|t": CardinalityObservation(rows=7.0, estimate=9.0)},
        branches={"f|b|2": BranchStats(cond_true=3, total=20, misses=2)},
        hotness={"f|b|0": 11.0},
    )
    restored = QueryFeedback.from_json(
        json.loads(json.dumps(feedback.to_json()))
    )
    assert restored == feedback


def test_branch_probabilities_require_evidence():
    feedback = QueryFeedback(branches={
        "few": BranchStats(cond_true=1, total=5),
        "many": BranchStats(cond_true=20, total=100),
    })
    probabilities = feedback.branch_probabilities()
    assert "few" not in probabilities
    assert probabilities["many"] == pytest.approx(0.2)


# -- the cardinality consumer (planner) ----------------------------------


def test_feedback_model_overrides_estimates(db):
    bound, _ = db._plan(ALL_QUERIES["q5"].sql)
    filters = [
        node for node in bound.plan.walk() if node.kind == "filter"
    ]
    target = next(f for f in filters if cardinality_key(f) == "filter|orders")
    model = FeedbackCardinalityModel({"filter|orders": 252.0})
    assert model.estimate(target) == 252.0
    assert model.hits >= 1
    # un-observed nodes fall back to the default model
    default = FeedbackCardinalityModel({})
    scan = next(n for n in bound.plan.walk() if n.kind == "scan")
    assert model.estimate(scan) == default.estimate(scan)


def test_cardinality_feedback_flips_join_order(db):
    sql = ALL_QUERIES["q8"].sql
    store = db.enable_pgo()
    db.profile(sql, pgo=True)
    feedback = store.feedback(sql)
    _, default_plan = db._plan(sql)
    _, informed_plan = db._plan(
        sql, model=FeedbackCardinalityModel(feedback.cardinality_overrides())
    )
    # q8's constant-false part filter is mis-estimated at 33% selectivity;
    # the observed count moves the part join to the bottom of the tree
    assert plan_signature(default_plan) != plan_signature(informed_plan)
    r_off = db.execute(sql)
    r_on = db.execute(sql, pgo=True)
    assert r_off.rows == r_on.rows


def test_pgo_picks_cheaper_plan_from_bad_hints_observations(db):
    store = db.enable_pgo()  # fresh store
    # profile ONLY the losing hinted plan of the Fig. 10/11 pair
    db.profile(PAIR_SQL, join_order_hint=PARTSUPP_FIRST, pgo=True)
    bad = db.execute(PAIR_SQL, join_order_hint=PARTSUPP_FIRST)
    good = db.execute(PAIR_SQL, join_order_hint=ORDERS_FIRST)
    informed = db.execute(PAIR_SQL, pgo=True)
    assert informed.rows == good.rows == bad.rows
    # observed cardinalities are plan-independent, so even the bad plan's
    # profile steers the planner to the cheaper join order
    assert informed.cycles == min(good.cycles, bad.cycles)


# -- the backend consumers (layout, spilling) ----------------------------


def _branchy_function():
    module = Module("m")
    fn = module.new_function("f", [("n", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    entry, loop, body, odd, join, done = (
        b.block(x) for x in ("entry", "loop", "body", "odd", "join", "done")
    )
    (n,) = fn.params
    b.set_block(entry)
    b.br(loop)
    b.set_block(loop)
    i = b.phi(Type.I64)
    acc = b.phi(Type.I64)
    b.add_incoming(i, b.const(0), entry)
    b.add_incoming(acc, b.const(0), entry)
    b.condbr(b.cmp("cmplt", i, n), body, done)
    b.set_block(body)
    is_odd = b.cmp("cmpeq", b.and_(i, b.const(1)), b.const(1))
    b.condbr(is_odd, odd, join)
    b.set_block(odd)
    bumped = b.add(acc, i)
    b.br(join)
    b.set_block(join)
    merged = b.phi(Type.I64)
    b.add_incoming(merged, acc, body)
    b.add_incoming(merged, bumped, odd)
    new_i = b.add(i, b.const(1))
    b.add_incoming(i, new_i, join)
    b.add_incoming(acc, merged, join)
    b.br(loop)
    b.set_block(done)
    b.ret(acc)
    return module, fn


def test_branch_inversion_swaps_layout():
    _, fn = _branchy_function()
    condbrs = [
        i for i in fn.all_instructions() if i.op == "condbr"
    ]
    default = select_function(fn)
    inverted = select_function(
        fn, invert_branches={condbrs[0].id, condbrs[1].id}
    )

    def branch_ops(items):
        from repro.vm.isa import Opcode

        return [
            item.op
            for item in items
            if getattr(item, "op", None) in (Opcode.BRZ, Opcode.BRNZ)
        ]

    from repro.vm.isa import Opcode

    assert branch_ops(default.items) and all(
        op == Opcode.BRNZ for op in branch_ops(default.items)
    )
    assert Opcode.BRZ in branch_ops(inverted.items)


def test_branch_feedback_preserves_results(db):
    sql = ALL_QUERIES["q1"].sql
    baseline = db._compile(sql, None)
    # force-invert every conditional branch in the compiled query module
    branches = {
        key: BranchStats(cond_true=0, total=100)
        for instr_id, key in ir_position_keys(baseline.query_ir.module).items()
    }
    feedback = QueryFeedback(
        sql=sql, plan_signature=baseline.plan_signature, branches=branches
    )
    informed = db._compile(sql, None, feedback=feedback)
    assert informed.feedback_applied
    _, rows_base, _ = db._run_compiled(baseline)
    _, rows_informed, _ = db._run_compiled(informed)
    # layout changed, semantics did not
    assert rows_informed == rows_base


def test_hotness_weights_and_spill_equivalence(db):
    _, fn = _branchy_function()
    selected = select_function(fn)
    ids = [
        ir_id
        for ir_id in (
            getattr(item, "ir_id", None) for item in selected.items
        )
        if ir_id is not None
    ]
    hotness = {ir_id: 10.0 for ir_id in ids}
    weights = _vreg_weights(selected.items, hotness)
    assert weights and all(w > 0 for w in weights.values())
    # allocation with hotness must still produce working code end-to-end
    sql = ALL_QUERIES["q1"].sql
    baseline = db._compile(sql, None)
    hot = {
        key: 5.0
        for key in ir_position_keys(baseline.query_ir.module).values()
    }
    feedback = QueryFeedback(
        sql=sql, plan_signature=baseline.plan_signature, hotness=hot
    )
    informed = db._compile(sql, None, feedback=feedback)
    assert informed.feedback_applied
    _, rows_base, _ = db._run_compiled(baseline)
    _, rows_informed, _ = db._run_compiled(informed)
    assert rows_informed == rows_base


def test_stale_backend_feedback_is_ignored(db):
    sql = ALL_QUERIES["q1"].sql
    feedback = QueryFeedback(
        sql=sql, plan_signature="not-the-plan",
        branches={"f|b|0": BranchStats(cond_true=0, total=100)},
        hotness={"f|b|0": 9.0},
    )
    compiled = db._compile(sql, None, feedback=feedback)
    assert not compiled.feedback_applied


# -- the store -----------------------------------------------------------


def test_store_roundtrip_on_disk(db, tmp_path):
    store_dir = tmp_path / "pgo"
    store = db.enable_pgo(str(store_dir))
    sql = ALL_QUERIES["q5"].sql
    db.profile(sql, pgo=True)
    assert len(store) == 1
    key = fingerprint(sql)
    assert (store_dir / key / "feedback.json").exists()
    assert (store_dir / key / "runs" / "run_1" / "samples.jsonl").exists()

    reloaded = ProfileStore(directory=str(store_dir))
    assert reloaded.fingerprints() == [key]
    assert reloaded.feedback(sql) == store.feedback(sql)
    assert reloaded.version(sql) == 1

    db.profile(sql, pgo=True)
    assert store.version(sql) == 2
    assert (store_dir / key / "runs" / "run_2").exists()


def test_store_lookup_by_sql_or_fingerprint(db):
    store = db.enable_pgo()
    sql = ALL_QUERIES["q5"].sql
    db.profile(sql, pgo=True)
    assert store.feedback(sql) is store.feedback(fingerprint(sql))
    assert store.feedback("select nothing_recorded from lineitem") is None


# -- the plan cache ------------------------------------------------------


def test_plan_cache_hits_and_feedback_invalidation(db):
    db.enable_pgo()  # fresh store also clears the cache
    sql = "select count(*) c from lineitem where l_quantity > 25"
    hits, misses = db.plan_cache_hits, db.plan_cache_misses
    first = db.execute(sql, pgo=True)
    assert db.plan_cache_misses == misses + 1
    second = db.execute(sql, pgo=True)
    assert db.plan_cache_hits == hits + 1
    assert first.rows == second.rows
    # recording fresh feedback bumps the store version -> recompile
    db.profile(sql, pgo=True)
    third = db.execute(sql, pgo=True)
    assert db.plan_cache_misses == misses + 2
    assert third.rows == first.rows
    fourth = db.execute(sql, pgo=True)
    assert db.plan_cache_hits == hits + 2
    assert fourth.cycles == third.cycles  # cached plan replays identically


def test_cache_key_separates_hints_and_options(db):
    db.enable_pgo()
    misses = db.plan_cache_misses
    db.execute(PAIR_SQL, pgo=True)
    db.execute(PAIR_SQL, join_order_hint=PARTSUPP_FIRST, pgo=True)
    db.execute(PAIR_SQL, optimize_backend=False, pgo=True)
    assert db.plan_cache_misses == misses + 3


def test_pgo_requires_enable():
    bare = Database()
    with pytest.raises(ReproError, match="enable_pgo"):
        bare.execute("select 1", pgo=True)
    with pytest.raises(ReproError, match="enable_pgo"):
        bare.profile("select 1", pgo=True)


# -- tuple counters ------------------------------------------------------


def test_tuple_counters_only_when_requested(db):
    sql = ALL_QUERIES["q5"].sql
    plain = db.profile(sql)
    assert plain.task_counts == {}
    db.enable_pgo()
    counted = db.profile(sql, pgo=True)
    assert counted.task_counts
    # counters do not change the result
    assert plain.result.rows == counted.result.rows
