"""Tests for pipeline decomposition (lowering step 1)."""

from repro.pipeline import decompose
from repro.plan.physical import PlannerOptions, plan_physical
from repro.sql import parse
from repro.sql.binder import Binder

from tests.helpers import small_catalog


def pipelines_for(sql, options=None):
    catalog = small_catalog()
    bound = Binder(catalog).bind(parse(sql))
    physical = plan_physical(bound.plan, bound.model, options)
    tasks_seen = []
    pipelines = decompose(physical, on_task=tasks_seen.append)
    return pipelines, tasks_seen, physical


def test_scan_filter_output_is_one_pipeline():
    pipelines, tasks, _ = pipelines_for("select id from items where price > 1")
    assert len(pipelines) == 1
    roles = [t.role for t in pipelines[0].tasks]
    assert roles == ["scan", "filter", "output"]


def test_join_splits_at_build():
    pipelines, _, _ = pipelines_for(
        "select i.id from items i, kinds k where i.kind = k.name"
    )
    assert len(pipelines) == 2
    build_roles = [t.role for t in pipelines[0].tasks]
    probe_roles = [t.role for t in pipelines[1].tasks]
    assert build_roles[-1] == "build"
    assert "probe" in probe_roles
    assert probe_roles[-1] == "output"


def test_groupby_splits_at_materialize():
    pipelines, _, _ = pipelines_for(
        "select kind, count(*) n from items group by kind"
    )
    assert len(pipelines) == 2
    assert [t.role for t in pipelines[0].tasks] == ["scan", "materialize"]
    assert [t.role for t in pipelines[1].tasks][:1] == ["aggregate"]


def test_sort_adds_materialize_and_scan_pipelines():
    pipelines, _, _ = pipelines_for(
        "select kind, count(*) n from items group by kind order by n desc"
    )
    # scan->materialize | aggregate->...->materialize(sort) | output-scan->output
    assert len(pipelines) == 3
    assert pipelines[1].tasks[-1].role == "materialize"
    assert pipelines[2].tasks[0].role == "output-scan"


def test_every_task_registered_once():
    pipelines, tasks, _ = pipelines_for(
        "select i.kind, sum(i.price) s from items i, kinds k "
        "where i.kind = k.name group by i.kind order by s desc limit 3"
    )
    flat = [t for p in pipelines for t in p.tasks]
    assert len(flat) == len(tasks)
    assert {t.id for t in flat} == {t.id for t in tasks}


def test_materializing_operator_spans_pipelines():
    pipelines, _, physical = pipelines_for(
        "select i.id from items i, kinds k where i.kind = k.name"
    )
    from repro.plan.physical import PhysicalHashJoin

    join = next(op for op in physical.walk() if isinstance(op, PhysicalHashJoin))
    owning = [
        p.index for p in pipelines for t in p.tasks if t.operator is join
    ]
    assert len(owning) == 2 and owning[0] != owning[1]


def test_groupjoin_produces_three_pipelines():
    sql = (
        "select k.name, count(*) n from items i, kinds k "
        "where i.kind = k.name group by k.name"
    )
    pipelines, _, physical = pipelines_for(
        sql, PlannerOptions(enable_groupjoin=True)
    )
    from repro.plan.physical import PhysicalGroupJoin

    assert any(isinstance(op, PhysicalGroupJoin) for op in physical.walk())
    roles = [t.role for p in pipelines for t in p.tasks]
    assert "groupjoin-join build" in roles
    assert "groupjoin-groupby probe" in roles
    assert "groupjoin-groupby output" in roles
