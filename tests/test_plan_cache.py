"""Tests for the engine-level compiled-plan cache (repro.plancache)."""

import pytest

from repro import Database
from repro.plancache import PlanCache

SQL = "SELECT COUNT(*) FROM sales WHERE price > 100.0"
OTHER = "SELECT SUM(price) FROM sales"


# -- the LRU structure itself ------------------------------------------------


def test_lru_evicts_least_recently_used():
    cache = PlanCache(capacity=2)
    cache.put(("a",), "plan-a")
    cache.put(("b",), "plan-b")
    assert cache.get(("a",)) == "plan-a"  # refreshes a
    cache.put(("c",), "plan-c")  # over capacity: b is the LRU victim
    assert ("b",) not in cache
    assert cache.get(("a",)) == "plan-a"
    assert cache.get(("c",)) == "plan-c"
    assert cache.evictions == 1


def test_hit_miss_counters_and_stats():
    cache = PlanCache(capacity=4)
    assert cache.get(("missing",)) is None
    cache.put(("k",), "plan")
    assert cache.get(("k",)) == "plan"
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["capacity"] == 4


def test_stale_feedback_version_misses():
    cache = PlanCache()
    cache.put(("k",), "v0-plan", feedback_version=0)
    assert cache.get(("k",), feedback_version=1) is None
    cache.put(("k",), "v1-plan", feedback_version=1)
    assert cache.get(("k",), feedback_version=1) == "v1-plan"


def test_evict_since_watermark():
    cache = PlanCache()
    cache.put(("before",), "old")
    watermark = cache.serial
    cache.put(("during-1",), "new")
    cache.put(("during-2",), "new")
    assert cache.evict_since(watermark) == 2
    assert ("before",) in cache
    assert ("during-1",) not in cache
    assert ("during-2",) not in cache


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# -- engine integration ------------------------------------------------------


@pytest.fixture(scope="module")
def db():
    return Database.example(n_sales=800, n_products=50)


def test_execute_reuses_cached_plan(db):
    db.plan_cache.clear()
    hits, misses = db.plan_cache.hits, db.plan_cache.misses
    first = db.execute(SQL)
    assert db.plan_cache.misses == misses + 1
    second = db.execute(SQL)
    assert db.plan_cache.hits == hits + 1
    assert first.rows == second.rows
    assert db.plan_cache_hits == db.plan_cache.hits  # Database delegates


def test_flavors_key_separately(db):
    db.plan_cache.clear()
    db.execute(OTHER)
    plain_entries = len(db.plan_cache)
    store = db.enable_pgo()  # clears the cache
    try:
        db.execute(OTHER, pgo=True)
        db.execute(OTHER)
        # the pgo flavor compiles its own entry next to the plain one
        assert len(db.plan_cache) == plain_entries + 1
    finally:
        db.pgo_store = None
        db.plan_cache.clear()
        assert store is not None


def test_knob_changes_are_cache_misses(db):
    db.plan_cache.clear()
    db.execute(SQL)
    misses = db.plan_cache.misses
    db.execute(SQL, optimize_backend=False)
    assert db.plan_cache.misses == misses + 1
    db.execute(SQL, optimize_backend=False)
    assert db.plan_cache.misses == misses + 1  # second unoptimized run hits


# -- tier-aware supersession (repro.vm.tiering promotions) -------------------


def test_supersede_replaces_in_place():
    cache = PlanCache(capacity=2)
    cache.put(("a",), "plan-a")
    serial = cache.serial
    cache.put(("b",), "plan-b")
    hits, misses, evictions = cache.hits, cache.misses, cache.evictions
    assert cache.tier_of(("a",)) == 1
    assert cache.supersede(("a",), compiled="plan-a-t2")
    # same slot: serial counter, stats, and LRU order are all untouched
    assert cache.tier_of(("a",)) == 2
    assert cache.serial == serial + 1
    assert (cache.hits, cache.misses, cache.evictions) == (
        hits, misses, evictions
    )
    # "a" was never refreshed, so it is still the LRU victim
    cache.put(("c",), "plan-c")
    assert ("a",) not in cache
    assert ("b",) in cache


def test_supersede_missing_key_is_a_noop():
    cache = PlanCache()
    assert not cache.supersede(("missing",))
    assert cache.tier_of(("missing",)) is None


def test_supersede_never_demotes():
    cache = PlanCache()
    cache.put(("k",), "plan")
    assert cache.supersede(("k",), tier=2)
    assert cache.supersede(("k",), tier=1)  # late tier-1 report
    assert cache.tier_of(("k",)) == 2


def test_supersede_compiled_by_identity():
    cache = PlanCache()
    plan = object()
    cache.put(("k",), plan)
    cache.put(("other",), object())
    assert cache.supersede_compiled(plan)
    assert cache.tier_of(("k",)) == 2
    assert cache.tier_of(("other",)) == 1
    assert not cache.supersede_compiled(object())
    assert cache.stats()["tier2_entries"] == 1
