"""Unit tests for trackers, tagging dictionary, and sample attribution."""

import pytest

from repro.backend.opts import OptimizationResult
from repro.errors import ProfilingError
from repro.pipeline.tasks import Task
from repro.plan.physical import PhysicalScan
from repro.profiling import AbstractionTracker, SampleProcessor, TaggingDictionary
from repro.profiling.postprocess import (
    CATEGORY_KERNEL,
    CATEGORY_OPERATOR,
    CATEGORY_UNATTRIBUTED,
)
from repro.vm.isa import REG_TAG, CodeRegion, Opcode, Program
from repro.vm.pmu import Sample


def make_task(label="t"):
    op = PhysicalScan.__new__(PhysicalScan)
    # minimal operator stand-in: only label/op_id are used by these tests
    import itertools

    from repro.plan import physical as phys_mod

    op.op_id = next(phys_mod._phys_counter)
    op.logical_id = None
    op.table = None
    op.alias = label
    op.column_ius = {}
    return Task(op, "scan")


# -- tracker -------------------------------------------------------------


def test_tracker_stack_semantics():
    tracker = AbstractionTracker("op")
    assert tracker.current is None
    tracker.push("a")
    tracker.push("b")
    assert tracker.current == "b"
    assert tracker.pop() == "b"
    assert tracker.current == "a"


def test_tracker_active_context_is_balanced():
    tracker = AbstractionTracker("op")
    with tracker.active("x"):
        assert tracker.current == "x"
        with tracker.active("y"):
            assert tracker.current == "y"
        assert tracker.current == "x"
    assert tracker.current is None


def test_tracker_pop_empty_raises():
    with pytest.raises(ProfilingError):
        AbstractionTracker("op").pop()


def test_tracker_unbalanced_detected():
    tracker = AbstractionTracker("op")
    with pytest.raises(ProfilingError):
        with tracker.active("x"):
            tracker.pop()
            tracker.push("intruder")


# -- tagging dictionary ----------------------------------------------------


def test_dictionary_links_and_lookup():
    d = TaggingDictionary()
    task = make_task()
    d.register_task(task)
    d.link_instruction(7, task)
    assert d.tasks_of_instruction(7) == (task,)
    assert d.operator_of_task(task.id) is task.operator
    assert d.entry_count == 1
    assert d.size_bytes == 24


def test_dictionary_rejects_duplicate_task():
    d = TaggingDictionary()
    task = make_task()
    d.register_task(task)
    with pytest.raises(ProfilingError):
        d.register_task(task)


def test_dictionary_rejects_link_to_unknown_task():
    d = TaggingDictionary()
    with pytest.raises(ProfilingError):
        d.link_instruction(1, make_task())


def test_dictionary_optimization_removal():
    d = TaggingDictionary()
    task = make_task()
    d.register_task(task)
    d.link_instruction(1, task)
    d.link_instruction(2, task)
    result = OptimizationResult(removed={2})
    d.apply_optimizations(result)
    assert d.tasks_of_instruction(2) == ()
    assert d.tasks_of_instruction(1) == (task,)


def test_dictionary_merge_gains_multiple_parents():
    d = TaggingDictionary()
    t1, t2 = make_task("a"), make_task("b")
    d.register_task(t1)
    d.register_task(t2)
    d.link_instruction(1, t1)
    d.link_instruction(2, t2)
    result = OptimizationResult()
    result.record_merge(1, 2)
    d.apply_optimizations(result)
    assert set(d.tasks_of_instruction(1)) == {t1, t2}
    assert d.tasks_of_instruction(2) == ()


def test_dictionary_runtime_links():
    d = TaggingDictionary()
    d.link_runtime_instruction(5, "ht_insert")
    assert d.runtime_function_of(5) == "ht_insert"
    result = OptimizationResult(removed={5})
    d.apply_optimizations(result)
    assert d.runtime_function_of(5) is None


# -- sample processor -------------------------------------------------------


def build_program_with_regions():
    program = Program()
    program.append_function(
        "pipeline_0", [(Opcode.NOP, 0, 0, 0)] * 4, CodeRegion.QUERY
    )
    program.append_function(
        "ht_insert", [(Opcode.NOP, 0, 0, 0)] * 4, CodeRegion.RUNTIME
    )
    program.append_function(
        "memcpy", [(Opcode.NOP, 0, 0, 0)] * 4, CodeRegion.SYSLIB
    )
    program.append_function(
        "kernel_alloc", [(Opcode.NOP, 0, 0, 0)] * 4, CodeRegion.KERNEL
    )
    return program


def make_env():
    d = TaggingDictionary()
    task = make_task()
    d.register_task(task)
    d.link_instruction(100, task)
    program = build_program_with_regions()
    program.debug[0] = 100  # query ip 0 -> ir 100
    program.debug[4] = 900  # runtime ip
    d.link_runtime_instruction(900, "ht_insert")
    return SampleProcessor(program, d), task


def test_query_sample_attributed_via_dictionary():
    processor, task = make_env()
    a = processor.attribute(Sample(ip=0, tsc=1))
    assert a.category == CATEGORY_OPERATOR
    assert a.tasks == (task,)
    assert a.via == "dictionary"


def test_query_sample_without_debug_is_unattributed():
    processor, _ = make_env()
    a = processor.attribute(Sample(ip=1, tsc=1))
    assert a.category == CATEGORY_UNATTRIBUTED


def test_kernel_sample_goes_to_kernel_bucket():
    processor, _ = make_env()
    a = processor.attribute(Sample(ip=12, tsc=1))
    assert a.category == CATEGORY_KERNEL
    assert a.kernel_function == "kernel_alloc"


def test_syslib_sample_is_unattributed():
    processor, _ = make_env()
    a = processor.attribute(Sample(ip=8, tsc=1))
    assert a.category == CATEGORY_UNATTRIBUTED


def test_runtime_sample_register_tagging():
    processor, task = make_env()
    regs = [0] * 16
    regs[REG_TAG] = task.id
    a = processor.attribute(Sample(ip=4, tsc=1, registers=tuple(regs)))
    assert a.category == CATEGORY_OPERATOR
    assert a.via == "register-tag"
    assert a.tasks == (task,)
    assert a.runtime_function == "ht_insert"


def test_runtime_sample_with_bad_tag_is_unattributed():
    processor, _ = make_env()
    regs = [0] * 16
    regs[REG_TAG] = 999999
    a = processor.attribute(Sample(ip=4, tsc=1, registers=tuple(regs)))
    assert a.category == CATEGORY_UNATTRIBUTED


def test_runtime_sample_callstack_disambiguation():
    processor, task = make_env()
    a = processor.attribute(Sample(ip=4, tsc=1, callstack=(0,)))
    assert a.category == CATEGORY_OPERATOR
    assert a.via == "callstack"
    assert a.tasks == (task,)


def test_runtime_sample_without_either_is_unattributed():
    processor, _ = make_env()
    a = processor.attribute(Sample(ip=4, tsc=1))
    assert a.category == CATEGORY_UNATTRIBUTED


def test_summary_shares_sum_to_one():
    processor, task = make_env()
    regs = [0] * 16
    regs[REG_TAG] = task.id
    samples = [
        Sample(ip=0, tsc=1),
        Sample(ip=12, tsc=2),
        Sample(ip=8, tsc=3),
        Sample(ip=4, tsc=4, registers=tuple(regs)),
    ]
    attributions = processor.process(samples)
    summary = processor.summarize(attributions)
    assert summary.total_samples == 4
    assert summary.operator_share == 0.5
    assert summary.kernel_share == 0.25
    assert summary.unattributed_share == pytest.approx(0.25)


def test_multi_parent_sample_weight_split():
    d = TaggingDictionary()
    t1, t2 = make_task("a"), make_task("b")
    d.register_task(t1)
    d.register_task(t2)
    d.link_instruction(100, t1)
    d.link_instruction(101, t2)
    result = OptimizationResult()
    result.record_merge(100, 101)
    d.apply_optimizations(result)
    program = build_program_with_regions()
    program.debug[0] = 100
    processor = SampleProcessor(program, d)
    attributions = processor.process([Sample(ip=0, tsc=1)])
    weights = processor.operator_weights(attributions)
    assert weights[t1.operator] == pytest.approx(0.5)
    assert weights[t2.operator] == pytest.approx(0.5)
