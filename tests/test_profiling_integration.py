"""Integration tests for Tailored Profiling on the full engine stack."""

import pytest

from repro import Database, Event, PlannerOptions, ProfilerConfig, ProfilingMode
from repro.data.queries import EXAMPLE_QUERY, FIG9_QUERY
from repro.plan.physical import PhysicalGroupBy, PhysicalHashJoin, PhysicalScan
from repro.profiling.postprocess import CATEGORY_OPERATOR

from tests.conftest import rows_match


@pytest.fixture(scope="module")
def fig9_profile(tpch_db):
    return tpch_db.profile(FIG9_QUERY.sql)


def test_profile_result_matches_plain_execution(tpch_db, fig9_profile):
    plain = tpch_db.execute(FIG9_QUERY.sql)
    assert rows_match(fig9_profile.result.rows, plain.rows)


def test_operator_costs_sum_to_one(fig9_profile):
    costs = fig9_profile.operator_costs()
    assert costs
    assert sum(costs.values()) == pytest.approx(1.0)


def test_join_and_groupby_dominate_fig9(fig9_profile):
    """The paper's Fig. 9: aggregation and join carry ~97% of the cost."""
    costs = {op.kind: share for op, share in fig9_profile.operator_costs().items()}
    assert costs.get("groupby", 0) + costs.get("hashjoin", 0) > 0.5
    assert costs.get("select", 0) < 0.1  # cheap filter


def test_annotated_plan_has_percentages(fig9_profile):
    text = fig9_profile.annotated_plan()
    assert "%" in text
    assert "join" in text and "group by" in text


def test_annotated_ir_shows_owners_and_shares(fig9_profile):
    text = fig9_profile.annotated_ir()
    assert "pipeline_" in text
    assert "group by#" in text
    assert "%" in text


def test_register_tagging_resolves_runtime_samples(fig9_profile):
    vias = {a.via for a in fig9_profile.attributions}
    assert "register-tag" in vias
    runtime_attr = [
        a for a in fig9_profile.attributions if a.runtime_function is not None
    ]
    assert runtime_attr, "some samples should land in ht_insert"
    resolved = [a for a in runtime_attr if a.category == CATEGORY_OPERATOR]
    assert len(resolved) / len(runtime_attr) > 0.9


def test_callstack_mode_resolves_runtime_samples(tpch_db):
    profile = tpch_db.profile(
        FIG9_QUERY.sql, ProfilerConfig(mode=ProfilingMode.CALLSTACK)
    )
    vias = {a.via for a in profile.attributions}
    assert "callstack" in vias
    summary = profile.attribution_summary()
    assert summary.attributed_share > 0.9


def test_plain_ip_mode_cannot_resolve_shared_locations(tpch_db):
    profile = tpch_db.profile(
        FIG9_QUERY.sql, ProfilerConfig(mode=ProfilingMode.NONE)
    )
    runtime_attr = [
        a for a in profile.attributions if a.runtime_function is not None
    ]
    assert runtime_attr
    assert all(a.category != CATEGORY_OPERATOR for a in runtime_attr)


def test_attribution_summary_in_paper_band(fig9_profile):
    summary = fig9_profile.attribution_summary()
    assert summary.attributed_share > 0.9
    assert summary.unattributed_share < 0.1


def test_callstack_much_more_expensive_than_register_tagging(tpch_db):
    base = tpch_db.execute(FIG9_QUERY.sql).cycles
    reg = tpch_db.profile(
        FIG9_QUERY.sql, ProfilerConfig(mode=ProfilingMode.REGISTER_TAGGING)
    ).result.cycles
    stack = tpch_db.profile(
        FIG9_QUERY.sql, ProfilerConfig(mode=ProfilingMode.CALLSTACK)
    ).result.cycles
    reg_overhead = reg / base - 1
    stack_overhead = stack / base - 1
    assert stack_overhead > 5 * reg_overhead  # paper: 529% vs 38%


def test_overhead_grows_with_sampling_frequency(tpch_db):
    base = tpch_db.execute(FIG9_QUERY.sql).cycles
    slow = tpch_db.profile(FIG9_QUERY.sql, ProfilerConfig(period=20000)).result.cycles
    fast = tpch_db.profile(FIG9_QUERY.sql, ProfilerConfig(period=2000)).result.cycles
    assert fast > slow > base


def test_timeline_shows_phases(fig9_profile):
    timeline = fig9_profile.activity_timeline(bins=20)
    assert timeline.bins
    tscs = [b.start_tsc for b in timeline.bins]
    assert tscs == sorted(tscs)
    for bucket in timeline.bins:
        assert sum(bucket.by_operator.values()) <= bucket.total + 1e-9
    # the sort (if sampled at all) can only be active at the end
    render = fig9_profile.render_timeline(bins=20)
    assert "|" in render


def test_memory_profile_distinguishes_scan_from_join(tpch_db):
    profile = tpch_db.profile(
        FIG9_QUERY.sql,
        ProfilerConfig(event=Event.LOADS, period=150, record_memaddr=True),
    )
    mem = profile.memory_profile()
    scans = [op for op in mem.accesses if isinstance(op, PhysicalScan)]
    joins = [op for op in mem.accesses if isinstance(op, PhysicalHashJoin)]
    assert scans and joins
    best_scan = max(mem.band_linearity(op) for op in scans)
    join_lin = max(abs(mem.band_linearity(op)) for op in joins)
    assert best_scan > 0.9, "table scans should be near-perfectly linear"
    assert join_lin < 0.5, "hash-table access should be scattered"


def test_tsc_timestamps_monotonic_and_spaced(tpch_db):
    profile = tpch_db.profile(
        FIG9_QUERY.sql, ProfilerConfig(event=Event.CYCLES, period=5000)
    )
    tscs = [s.tsc for s in profile.samples]
    assert tscs == sorted(tscs)
    deltas = [b - a for a, b in zip(tscs, tscs[1:])]
    # sampling on cycles: gaps reflect the period plus per-sample overhead
    core = sorted(deltas)[len(deltas) // 10 : -len(deltas) // 10 or None]
    assert all(d >= 5000 for d in core)
    assert sum(core) / len(core) < 5000 * 3


def test_loads_event_samples_point_at_loads(tpch_db):
    from repro.vm.isa import CodeRegion, Opcode

    profile = tpch_db.profile(
        FIG9_QUERY.sql,
        ProfilerConfig(event=Event.LOADS, period=500, record_memaddr=True),
    )
    checked = 0
    for sample in profile.samples:
        region = profile.program.region_at(sample.ip)
        if region in (CodeRegion.QUERY, CodeRegion.RUNTIME, CodeRegion.SYSLIB):
            assert profile.program.code[sample.ip][0] == Opcode.LOAD
            checked += 1
    assert checked > 10


def test_dictionary_covers_all_query_instructions(fig9_profile):
    """§6.3: every sampleable generated instruction must be attributable."""
    tagging = fig9_profile.tagging
    for function in fig9_profile.ir_module.functions:
        for instr in function.all_instructions():
            tasks = tagging.tasks_of_instruction(instr.id)
            assert tasks, f"untagged instruction %{instr.id} in {function.name}"


def test_dictionary_size_reported(fig9_profile):
    tagging = fig9_profile.tagging
    assert tagging.entry_count > 100
    assert tagging.size_bytes == tagging.entry_count * 24


def test_groupjoin_profile_and_correctness(tpch_db):
    sql = (
        "select o_orderkey, sum(l_extendedprice) s from orders, lineitem "
        "where o_orderkey = l_orderkey group by o_orderkey"
    )
    options = PlannerOptions(enable_groupjoin=True)
    fused = tpch_db.execute(sql, planner_options=options)
    oracle = tpch_db.execute_interpreted(sql, planner_options=options)
    plain = tpch_db.execute(sql)
    assert rows_match(fused.rows, oracle.rows)
    assert rows_match(sorted(fused.rows), sorted(plain.rows))

    profile = tpch_db.profile(sql, planner_options=options)
    task_labels = {t.role for t in profile.task_costs()}
    assert any("groupjoin" in role for role in task_labels)


def test_explain_analyze_tuple_counts(tpch_db):
    text = tpch_db.explain_analyze(
        "select count(*) c from lineitem where l_quantity < 10"
    )
    assert "tuples" in text


def test_example_query_profile_listing_one_lesson(example_db):
    """Listing 1's lesson: the aggregation's samples, spread across many

    instructions, outweigh the join's single hot load."""
    profile = example_db.profile(EXAMPLE_QUERY.sql)
    costs = {op.kind: share for op, share in profile.operator_costs().items()}
    assert costs.get("groupby", 0) > 0.25


def test_branch_miss_event_sampling(tpch_db):
    """BR_MISP-style sampling: mispredicted branches concentrate in the

    data-dependent operators (hash probing), not in predictable scan
    control flow."""
    from repro.data.queries import FIG9_QUERY

    profile = tpch_db.profile(
        FIG9_QUERY.sql, ProfilerConfig(event=Event.BRANCH_MISS, period=40)
    )
    assert profile.samples, "branch misses must occur"
    costs = {op.kind: w for op, w in profile.operator_costs().items()}
    hashers = costs.get("hashjoin", 0) + costs.get("groupby", 0)
    assert hashers > 0.5, f"hash operators should own most mispredicts: {costs}"


def test_l1_miss_event_sampling(tpch_db):
    from repro.data.queries import FIG9_QUERY

    profile = tpch_db.profile(
        FIG9_QUERY.sql,
        ProfilerConfig(event=Event.L1_MISS, period=50, record_memaddr=True),
    )
    assert profile.samples
    mem = profile.memory_profile()
    assert mem.accesses, "cache-miss addresses should be attributable"
