"""Property-based tests (hypothesis) for core invariants.

The heavyweight property is compiled-equals-interpreted over randomly
generated SQL — it sweeps the whole stack (binder, optimizer, codegen,
backend, VM) against the reference executor.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Column, Database, DataType, Schema
from repro.catalog.strings import StringDictionary
from repro.vm.cache import CacheLevel
from repro.vm.memory import Memory

from tests.conftest import rows_match

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# memory allocator


@given(st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=30))
@RELAXED
def test_allocations_disjoint_aligned_zeroed(sizes):
    mem = Memory(1 << 12)
    regions = []
    for i, size in enumerate(sizes):
        addr = mem.alloc(size, f"r{i}")
        assert addr % 8 == 0
        rounded = (size + 7) & ~7
        for lo, hi in regions:
            assert addr >= hi or addr + rounded <= lo
        for off in range(0, rounded, 8):
            assert mem.read(addr + off) == 0
        regions.append((addr, addr + rounded))


@given(
    st.lists(st.integers(min_value=8, max_value=64), min_size=2, max_size=10),
    st.integers(min_value=0, max_value=9),
)
@RELAXED
def test_release_rewinds_to_mark(sizes, split):
    split = min(split, len(sizes) - 1)
    mem = Memory(1 << 12)
    for size in sizes[:split]:
        mem.alloc(size)
    mark = mem.mark()
    for size in sizes[split:]:
        mem.alloc(size)
    mem.release(mark)
    assert mem.mark() == mark


# ---------------------------------------------------------------------------
# cache model vs reference LRU


@given(st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=200))
@RELAXED
def test_cache_level_matches_reference_lru(lines):
    level = CacheLevel(64 * 4 * 2, 4, 64)  # 2 sets, 4 ways
    reference: dict[int, list[int]] = {0: [], 1: []}
    for line in lines:
        got_hit = level.access(line)
        bucket = reference[line & 1]
        want_hit = line in bucket
        if want_hit:
            bucket.remove(line)
        bucket.insert(0, line)
        del bucket[4:]
        assert got_hit == want_hit


# ---------------------------------------------------------------------------
# string dictionary


@given(st.sets(st.text(min_size=0, max_size=12), min_size=1, max_size=40))
@RELAXED
def test_dictionary_ids_agree_with_string_order(strings):
    d = StringDictionary()
    for s in strings:
        d.collect(s)
    d.freeze()
    ordered = sorted(strings)
    for a, b in zip(ordered, ordered[1:]):
        assert d.id_of(a) < d.id_of(b)


@given(
    st.sets(st.text(alphabet="abcd", min_size=1, max_size=6), min_size=1, max_size=20),
    st.text(alphabet="abcd", min_size=1, max_size=6),
)
@RELAXED
def test_rank_is_bisect_consistent(strings, probe):
    d = StringDictionary()
    for s in strings:
        d.collect(s)
    d.freeze()
    rank = d.rank(probe)
    ordered = sorted(strings)
    assert all(s < probe for s in ordered[:rank])
    assert all(s >= probe for s in ordered[rank:])


# ---------------------------------------------------------------------------
# compiled == interpreted over random SQL

_ROW = st.tuples(
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=2000).map(lambda c: c / 100),
    st.sampled_from(["red", "green", "blue", "teal", "plum"]),
)


def _build_db(rows):
    db = Database(memory_bytes=1 << 18)
    t = db.create_table("t", Schema([
        Column("a", DataType.INT),
        Column("g", DataType.INT),
        Column("m", DataType.DECIMAL),
        Column("s", DataType.STRING),
    ]))
    t.extend(rows)
    db.finalize()
    return db

_PREDICATES = [
    "a > 0",
    "a between -10 and 25",
    "g in (1, 3, 5, 7)",
    "s = 'red'",
    "s like '%e%'",
    "not (s = 'blue')",
    "m > 5.00 and a < 30",
    "a > g or m < 2.50",
    "m * 2 > 10.00",
    "a + g <= 20",
]


@given(
    rows=st.lists(_ROW, min_size=1, max_size=50),
    predicate=st.sampled_from(_PREDICATES),
    aggregate=st.booleans(),
)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_compiled_matches_interpreted_on_random_data(rows, predicate, aggregate):
    db = _build_db(rows)
    if aggregate:
        sql = (
            f"select g, count(*) n, sum(m) total, min(a) lo, max(a) hi "
            f"from t where {predicate} group by g order by g"
        )
    else:
        sql = f"select a, g, m, s from t where {predicate} order by a, g, m, s"
    compiled = db.execute(sql)
    oracle = db.execute_interpreted(sql)
    assert rows_match(compiled.rows, oracle.rows)


@given(
    rows=st.lists(_ROW, min_size=1, max_size=40),
    expr=st.sampled_from([
        "a + g * 2",
        "m * m",
        "m / 3.0",
        "a - g",
        "case when a > 0 then m else 0 end",
        "(m + 1) * (1 - 0.05)",
    ]),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_expression_semantics_match(rows, expr):
    db = _build_db(rows)
    sql = f"select a, {expr} as v from t order by a, v"
    compiled = db.execute(sql)
    oracle = db.execute_interpreted(sql)
    assert rows_match(compiled.rows, oracle.rows)


@given(
    rows=st.lists(_ROW, min_size=2, max_size=40),
    descending=st.booleans(),
    limit=st.integers(min_value=1, max_value=10),
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_sort_limit_semantics_match(rows, descending, limit):
    db = _build_db(rows)
    direction = "desc" if descending else "asc"
    sql = f"select a, g from t order by a {direction}, g {direction} limit {limit}"
    compiled = db.execute(sql)
    oracle = db.execute_interpreted(sql)
    assert compiled.rows == oracle.rows  # fully keyed: order must agree


@given(rows=st.lists(_ROW, min_size=1, max_size=30))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_join_semantics_match(rows):
    db = Database(memory_bytes=1 << 18)
    t = db.create_table("t", Schema([
        Column("a", DataType.INT),
        Column("g", DataType.INT),
        Column("m", DataType.DECIMAL),
        Column("s", DataType.STRING),
    ]))
    t.extend(rows)
    dim = db.create_table("dim", Schema([
        Column("g", DataType.INT),
        Column("label", DataType.STRING),
    ]))
    dim.extend([(i, f"group-{i}") for i in range(10)])
    db.finalize()
    sql = (
        "select t.a, dim.label from t, dim where t.g = dim.g "
        "order by t.a, dim.label, t.m"
    )
    compiled = db.execute(sql)
    oracle = db.execute_interpreted(sql)
    assert rows_match(compiled.rows, oracle.rows)


@given(rows=st.lists(_ROW, min_size=1, max_size=35), negate=st.booleans())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_semi_join_semantics_match(rows, negate):
    db = Database(memory_bytes=1 << 18)
    t = db.create_table("t", Schema([
        Column("a", DataType.INT),
        Column("g", DataType.INT),
        Column("m", DataType.DECIMAL),
        Column("s", DataType.STRING),
    ]))
    t.extend(rows)
    dim = db.create_table("dim", Schema([
        Column("g", DataType.INT),
        Column("label", DataType.STRING),
    ]))
    dim.extend([(i, f"group-{i}") for i in range(0, 10, 2)])  # even groups only
    db.finalize()
    keyword = "not in" if negate else "in"
    sql = (
        f"select a, g from t where g {keyword} "
        "(select dim.g from dim) order by a, g, m"
    )
    compiled = db.execute(sql)
    oracle = db.execute_interpreted(sql)
    assert rows_match(compiled.rows, oracle.rows)
