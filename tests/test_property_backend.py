"""Property-based fuzzing of the backend: random IR vs Python evaluation.

Generates random straight-line arithmetic DAGs and random diamond control
flow over the IR builder, compiles them (with and without optimizations,
with and without the reserved tag register), and checks the machine's
result against direct Python evaluation.  This hammers instruction
selection, the register allocator's spilling, and the optimizer.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend import BackendOptions, compile_module
from repro.ir import IRBuilder, Module, Type
from repro.vm import CodeRegion, Machine, Memory, Program
from repro.vm.machine import _sdiv, crc32_mix

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_MASK64 = (1 << 64) - 1

# (opcode, python semantics); operands drawn from previously-defined values
_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: _wrap(a * b),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "min": min,
    "max": max,
    "crc32": crc32_mix,
    "shr": lambda a, b: (a & _MASK64) >> (b & 63),
    "cmplt": lambda a, b: 1 if a < b else 0,
}


def _wrap(v: int) -> int:
    v &= _MASK64
    return v - (1 << 64) if v >= (1 << 63) else v


_STEP = st.tuples(
    st.sampled_from(sorted(_OPS)),
    st.integers(min_value=0, max_value=30),  # operand index a (mod defined)
    st.integers(min_value=0, max_value=30),  # operand index b
    st.booleans(),  # b is a small constant instead
    st.integers(min_value=-8, max_value=8),  # the constant
)


def _build_and_run(steps, args, options):
    module = Module("fuzz")
    fn = module.new_function("f", [("x", Type.I64), ("y", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    b.set_block(b.block("entry"))

    values = [fn.params[0], fn.params[1]]
    expected = list(args)

    for op_name, ia, ib, const_b, const in steps:
        a_index = ia % len(values)
        a_val = values[a_index]
        a_py = expected[a_index]
        if const_b:
            b_val = b.const(const)
            b_py = const
        else:
            b_index = ib % len(values)
            b_val = values[b_index]
            b_py = expected[b_index]
        if op_name == "shr" and not const_b:
            b_val = b.const(abs(b_py) & 63)
            b_py = abs(b_py) & 63
        if op_name == "cmplt":
            result = b.cmp("cmplt", a_val, b_val)
            # keep booleans usable as i64 operands downstream
            result = b.add(result, b.const(0))
        else:
            result = b.binary(op_name, a_val, b_val)
        values.append(result)
        expected.append(_OPS[op_name](a_py, b_py))

    b.ret(values[-1])
    program = Program()
    compiled = compile_module(module, program, CodeRegion.QUERY, options)
    machine = Machine(program, Memory(1 << 16))
    got = machine.call(compiled["f"].info.start, tuple(args))
    return got, expected[-1]


@given(
    steps=st.lists(_STEP, min_size=1, max_size=40),
    x=st.integers(min_value=-(10**6), max_value=10**6),
    y=st.integers(min_value=-(10**6), max_value=10**6),
    reserve=st.booleans(),
    optimize=st.booleans(),
)
@RELAXED
def test_random_dag_matches_python(steps, x, y, reserve, optimize):
    options = BackendOptions(reserve_tag_register=reserve, optimize=optimize)
    got, want = _build_and_run(steps, (x, y), options)
    assert got == want


@given(
    steps=st.lists(_STEP, min_size=1, max_size=25),
    x=st.integers(min_value=-1000, max_value=1000),
    y=st.integers(min_value=-1000, max_value=1000),
)
@RELAXED
def test_optimized_equals_unoptimized(steps, x, y):
    plain, want = _build_and_run(steps, (x, y), BackendOptions(optimize=False))
    optimized, _ = _build_and_run(steps, (x, y), BackendOptions(optimize=True))
    assert plain == optimized == want


@given(
    x=st.integers(min_value=-(10**9), max_value=10**9),
    y=st.integers(min_value=1, max_value=10**6),
    take_left=st.booleans(),
)
@RELAXED
def test_diamond_control_flow(x, y, take_left):
    """Random diamond: condbr + phi merge, with division on one arm."""
    module = Module("fuzz")
    fn = module.new_function("f", [("x", Type.I64), ("y", Type.I64)], Type.I64)
    b = IRBuilder(fn)
    entry = b.block("entry")
    left = b.block("left")
    right = b.block("right")
    join = b.block("join")
    px, py = fn.params
    b.set_block(entry)
    cond = b.cmp("cmplt", px, b.const(0) if take_left else py)
    b.condbr(cond, left, right)
    b.set_block(left)
    lv = b.sdiv(px, py)
    b.br(join)
    b.set_block(right)
    rv = b.mul(px, b.const(3))
    b.br(join)
    b.set_block(join)
    out = b.phi(Type.I64)
    b.add_incoming(out, lv, left)
    b.add_incoming(out, rv, right)
    b.ret(out)

    program = Program()
    compiled = compile_module(module, program, CodeRegion.QUERY)
    machine = Machine(program, Memory(1 << 16))
    got = machine.call(compiled["f"].info.start, (x, y))
    threshold = 0 if take_left else y
    want = _sdiv(x, y) if x < threshold else _wrap(x * 3)
    assert got == want
