"""Property tests: aggregates are invariant under morsel scheduling.

Morsel-driven parallelism splits the scan into work units handed to
whichever simulated core is free, so partial aggregates merge in a
nondeterministic-looking (but seed-stable) order.  Whatever the worker
count or morsel size, the merged result must match the single-worker
reference — including on skewed partitions (all rows in one group) and
empty partitions (a filter that leaves nothing).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Column, DataType, Database, Schema

from tests.conftest import rows_match

_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _database(rows):
    db = Database()
    t = DataType
    table = db.create_table("t", Schema([
        Column("k", t.INT),
        Column("v", t.INT),
        Column("w", t.DECIMAL),
    ]))
    table.extend(rows)
    db.finalize()
    return db


# group keys drawn from a tiny domain force heavy skew; the weight column
# exercises decimal partial sums
row_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-999, max_value=999).map(lambda c: c / 100),
    ),
    min_size=0,
    max_size=60,
)


@_settings
@given(rows=row_lists, workers=st.sampled_from([2, 3, 4]),
       morsel=st.sampled_from([1, 3, 7, 1024]))
def test_grouped_aggregates_invariant_under_scheduling(rows, workers, morsel):
    db = _database(rows)
    sql = (
        "select t.k as c0, sum(t.v) as c1, count(*) as c2, avg(t.w) as c3 "
        "from t as t group by t.k"
    )
    reference = db.execute(sql).rows
    parallel = db.execute(sql, workers=workers, morsel_size=morsel).rows
    assert rows_match(parallel, reference, rel=1e-7)


@_settings
@given(rows=row_lists, workers=st.sampled_from([2, 4]))
def test_scalar_aggregates_over_empty_filter(rows, workers):
    db = _database(rows)
    # v > 1000 is unsatisfiable for the generated domain: every morsel's
    # partial aggregate is empty
    sql = (
        "select count(*) as c0, sum(t.v) as c1 "
        "from t as t where t.v > 1000"
    )
    reference = db.execute(sql).rows
    parallel = db.execute(sql, workers=workers, morsel_size=1).rows
    assert parallel == reference
    assert reference[0][0] == 0


@_settings
@given(rows=row_lists)
def test_single_hot_group_skew(rows):
    # force every row into one group on top of whatever hypothesis drew
    skewed = [(1, v, w) for _, v, w in rows]
    db = _database(skewed)
    sql = (
        "select t.k as c0, sum(t.v) as c1, avg(t.v) as c2 "
        "from t as t group by t.k"
    )
    reference = db.execute(sql).rows
    for workers, morsel in [(2, 1), (4, 3), (4, 1024)]:
        assert rows_match(
            db.execute(sql, workers=workers, morsel_size=morsel).rows,
            reference,
            rel=1e-7,
        )


def test_morsel_size_must_be_positive():
    db = _database([(1, 1, 1.0)])
    with pytest.raises(Exception):
        db.execute("select count(*) as c from t as t", morsel_size=0)
