"""Regression tests for aggregate and CASE edge cases.

These pin behaviors the differential fuzzer leans on: ``avg`` over
grouped input whose groups can be emptied by the filter, and CASE
predicates that compare against strings absent from the dictionary (this
engine's closest analogue to NULL-valued predicates) — in both the SQL
binder and the streaming DSL frontend.
"""

import pytest

from repro import Column, DataType, Database, Schema
from repro.streaming import EventFlow

from tests.conftest import rows_match


@pytest.fixture(scope="module")
def edge_db():
    db = Database()
    t = DataType
    table = db.create_table("t", Schema([
        Column("k", t.INT),
        Column("v", t.INT),
        Column("tag", t.STRING),
    ]))
    table.extend([
        (1, 2, "x"),
        (1, 3, "y"),
        (2, 40, "x"),
        (2, 10, "y"),
        (3, 9, "z"),
    ])
    db.finalize()
    return db


# -- avg over (potentially) empty grouped input ------------------------------

def test_grouped_avg_with_filtered_out_groups(edge_db):
    # the filter removes group 3 and half of group 1: avg must reflect
    # surviving rows only, and emptied groups must not emit at all
    result = edge_db.execute(
        "select t.k as c0, avg(t.v) as c1, count(*) as c2 "
        "from t as t where t.v >= 10 group by t.k"
    )
    assert rows_match(result.rows, [(2, 25.0, 2)])


def test_grouped_avg_over_fully_empty_input(edge_db):
    result = edge_db.execute(
        "select t.k as c0, avg(t.v) as c1 from t as t "
        "where t.v > 1000 group by t.k"
    )
    assert result.rows == []
    interpreted = edge_db.execute_interpreted(
        "select t.k as c0, avg(t.v) as c1 from t as t "
        "where t.v > 1000 group by t.k"
    )
    assert interpreted.rows == []


def test_ungrouped_avg_over_empty_input_is_guarded(edge_db):
    # scalar avg over zero rows must not divide by zero
    result = edge_db.execute(
        "select avg(t.v) as c0, count(*) as c1 from t as t where t.v > 1000"
    )
    assert result.rows == [(0.0, 0)]


def test_having_on_aggregate_of_emptied_groups(edge_db):
    result = edge_db.execute(
        "select t.k as c0, sum(t.v) as c1 from t as t "
        "where t.v >= 10 group by t.k having count(*) >= 2"
    )
    assert rows_match(result.rows, [(2, 50)])


# -- CASE with absent-string predicates (binder) -----------------------------

def test_case_with_absent_string_predicate(edge_db):
    # 'missing' is in no column: the comparison folds to constant FALSE
    # and every row must take the ELSE branch
    result = edge_db.execute(
        "select case when t.tag = 'missing' then 1 else 0 end as c0, "
        "count(*) as c1 from t as t "
        "group by case when t.tag = 'missing' then 1 else 0 end"
    )
    assert result.rows == [(0, 5)]


def test_case_with_absent_string_in_where(edge_db):
    result = edge_db.execute(
        "select count(*) as c0 from t as t "
        "where case when t.tag = 'missing' then 1 else 0 end = 0"
    )
    assert result.rows == [(5,)]


def test_case_absent_string_matches_interpreter(edge_db):
    sql = (
        "select t.k as c0, "
        "sum(case when t.tag = 'nope' then t.v else 0 end) as c1 "
        "from t as t group by t.k order by c0"
    )
    compiled = edge_db.execute(sql).rows
    interpreted = edge_db.execute_interpreted(sql).rows
    assert compiled == interpreted
    assert compiled == [(1, 0), (2, 0), (3, 0)]


def test_absent_string_inequality_is_constant_true(edge_db):
    result = edge_db.execute(
        "select count(*) as c0 from t as t where t.tag <> 'missing'"
    )
    assert result.rows == [(5,)]


# -- the same edges through the streaming DSL --------------------------------

@pytest.fixture(scope="module")
def events_db():
    db = Database()
    t = DataType
    events = db.create_table("events", Schema([
        Column("ts", t.DATE),
        Column("user", t.STRING),
        Column("amount", t.DECIMAL),
    ]))
    events.extend([
        ("2024-01-01", "alice", 10.0),
        ("2024-01-02", "bob", 20.0),
        ("2024-01-03", "alice", 30.0),
    ])
    db.finalize()
    return db


def test_flow_case_with_absent_string_predicate(events_db):
    flow = (EventFlow(events_db, "events")
            .derive(hit="case when user = 'nobody' then 1 else 0 end")
            .aggregate(by=["user"], totals={"hits": "sum(hit)",
                                            "n": "count(*)"})
            .order_by("user"))
    compiled = flow.run().rows
    assert compiled == [("alice", 0, 2), ("bob", 0, 1)]
    assert rows_match(compiled, flow.run_interpreted())


def test_flow_avg_over_emptied_group(events_db):
    flow = (EventFlow(events_db, "events")
            .where("amount > 1000.0")
            .aggregate(by=["user"], totals={"mean": "avg(amount)"}))
    assert flow.run().rows == []
    assert flow.run_interpreted() == []


def test_flow_absent_string_filter_drops_everything(events_db):
    flow = (EventFlow(events_db, "events")
            .where("user = 'nobody'")
            .aggregate(by=["user"], totals={"n": "count(*)"}))
    assert flow.run().rows == []
    assert rows_match(flow.run().rows, flow.run_interpreted())
