"""Tests for the report layer: zoom, pipeline view, IPC, timeline, IR view."""

import pytest

from repro import Event, ProfilerConfig
from repro.data.queries import FIG9_QUERY
from repro.profiling import reports


@pytest.fixture(scope="module")
def profile(tpch_db):
    return tpch_db.profile(FIG9_QUERY.sql)


def test_zoom_restricts_samples(profile):
    timeline = profile.activity_timeline(bins=10)
    mid = timeline.bins[len(timeline.bins) // 2].start_tsc
    zoomed = profile.zoom(0, mid)
    assert zoomed.samples
    assert all(s.tsc < mid for s in zoomed.samples)
    assert len(zoomed.samples) < len(profile.samples)
    # reports still work on the zoomed view
    assert "%" in zoomed.annotated_plan()
    costs = zoomed.operator_costs()
    assert costs and sum(costs.values()) == pytest.approx(1.0)


def test_zoom_isolates_temporal_hotspot(profile):
    """§4.3: the tail of this query is sort/output work; zooming onto it

    must change the dominant operator relative to the full profile."""
    tscs = sorted(s.tsc for s in profile.samples)
    cut = tscs[int(len(tscs) * 0.93)]
    tail = profile.zoom(cut, tscs[-1] + 1)
    tail_costs = {op.kind: w for op, w in tail.operator_costs().items()}
    full_costs = {op.kind: w for op, w in profile.operator_costs().items()}
    tail_share = tail_costs.get("sort", 0) + tail_costs.get("output", 0) \
        + tail_costs.get("groupby", 0)
    assert tail_share > full_costs.get("sort", 0) + full_costs.get("output", 0)


def test_zoom_empty_interval(profile):
    zoomed = profile.zoom(0, 1)
    assert zoomed.operator_costs() == {}
    assert zoomed.attribution_summary().total_samples == 0


def test_annotated_pipelines_report(profile):
    text = profile.annotated_pipelines()
    assert "pipeline 0" in text
    assert "build(" in text or "materialize(" in text
    assert "probe(" in text
    # shares parse back and sum to ~100
    shares = [
        float(line.strip().split("%")[0])
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit() and "%" in line
    ]
    assert sum(shares) == pytest.approx(100.0, abs=1.5)


def test_pipeline_totals_match_task_costs(profile):
    task_costs = profile.task_costs()
    assert task_costs
    assert sum(task_costs.values()) == pytest.approx(1.0)
    # every task with weight belongs to a known pipeline
    all_tasks = {t.id for p in profile.pipelines for t in p.tasks}
    for task in task_costs:
        assert task.id in all_tasks


def test_ipc_report(tpch_db, profile):
    instr_profile = tpch_db.profile(
        FIG9_QUERY.sql,
        ProfilerConfig(event=Event.INSTRUCTIONS, period=5000),
    )
    ipc = reports.ipc_report(profile, instr_profile)
    assert ipc
    for op, value in ipc.items():
        assert 0.0 <= value < 5.0
    text = reports.render_ipc(profile, instr_profile)
    assert "IPC" in text
    # the probe-heavy join is memory bound: IPC well below 1
    by_kind = {op.kind: v for op, v in ipc.items()}
    assert by_kind.get("hashjoin", 0) < 1.0
    # weighted mean IPC must be near the machine-wide ratio
    cycle_shares = profile.operator_costs()
    machine_ipc = profile.result.instructions / profile.result.cycles
    weighted = sum(ipc[op] * cycle_shares[op] for op in ipc)
    assert weighted == pytest.approx(machine_ipc, rel=0.35)


def test_timeline_bins_partition_samples(profile):
    timeline = profile.activity_timeline(bins=12)
    total = sum(b.total for b in timeline.bins)
    operator_samples = sum(
        1 for a in profile.attributions if a.category == "operator"
    )
    assert total == operator_samples


def test_annotated_ir_filters_by_pipeline(profile):
    all_text = profile.annotated_ir()
    one = profile.annotated_ir(pipeline_index=0)
    assert "pipeline_0" in one
    assert "pipeline_1" not in one
    assert "pipeline_1" in all_text


def test_memory_profile_requires_addresses(profile):
    # default profile has no memaddr capture -> empty access map
    mem = profile.memory_profile()
    assert mem.accesses == {}


def test_storage_report_attributes_segments(tpch_db):
    """The storage dimension: memaddr samples must resolve down to the
    physical segment (table, column, segment, encoding, part) and show
    up in the rendered storage report."""
    from repro.data.queries import ALL_QUERIES

    profile = tpch_db.profile(
        ALL_QUERIES["q6"].sql,
        ProfilerConfig(event=Event.LOADS, period=997, record_memaddr=True),
    )
    hits = [a for a in profile.attributions if a.storage is not None]
    assert hits, "no sample resolved to a storage structure"
    ref = hits[0].storage
    assert ref.table in tpch_db.storage.tables
    breakdown = reports.storage_breakdown(profile)
    assert breakdown
    (table, column), info = next(iter(breakdown.items()))
    assert info["samples"] > 0
    assert info["segments"], "per-segment counts missing"
    text = reports.render_storage_report(profile)
    assert "storage dimension" in text
    assert f"{table}.{column}" in text
    assert "seg " in text


def test_compare_profiles_report(tpch_db):
    from repro.profiling.reports import compare_profiles

    sql = (
        "select sum(l_extendedprice) s from lineitem, orders, partsupp "
        "where l_orderkey = o_orderkey and l_partkey = ps_partkey "
        "and l_suppkey = ps_suppkey and o_orderdate < date '1994-06-01'"
    )
    a = tpch_db.profile(sql, join_order_hint=["lineitem", "orders", "partsupp"])
    b = tpch_db.profile(sql, join_order_hint=["lineitem", "partsupp", "orders"])
    text = compare_profiles(a, b)
    assert "plan A" in text and "plan B" in text
    assert "cycles (wall)" in text
    assert "hashjoin" in text
    assert text.count("operators:") == 2


def test_sql_error_caret_formatting():
    from repro.errors import SqlError, format_sql_error

    sql = "select a\nfrom t\nwhere a >== 1"
    try:
        from repro.sql import parse

        parse(sql)
        raise AssertionError("should have failed")
    except SqlError as error:
        text = format_sql_error(sql, error)
        assert "line 3" in text
        assert "^" in text
        caret_line = text.splitlines()[-1]
        message_line = text.splitlines()[-2]
        assert len(caret_line) <= len(message_line) + 2


def test_plan_dot_export(profile):
    dot = profile.plan_dot()
    assert dot.startswith("digraph plan {")
    assert dot.rstrip().endswith("}")
    assert "->" in dot
    # every operator appears exactly once as a node
    ops = list(profile.physical.walk())
    for op in ops:
        assert f'n{op.op_id} [label=' in dot
    assert dot.count("->") == len(ops) - 1  # a tree
    assert "%" in dot


def test_hot_instructions():
    # a fresh database, not the shared fixture: the hot-list tail is a
    # cluster of ~2% shares whose ordering depends on the memory layout,
    # which drifts with whatever structures earlier tests materialized
    from repro import Database

    profile = Database.tpch(scale=0.001, seed=42).profile(FIG9_QUERY.sql)
    hot = profile.hot_instructions(10)
    assert len(hot) == 10
    shares = [h[0] for h in hot]
    assert shares == sorted(shares, reverse=True)
    assert all(0 < s <= 1 for s in shares)
    for share, ir_id, text, owners in hot:
        assert text and isinstance(ir_id, int)
        assert owners  # every hot line has an owner
    # the directory-lookup load should be near the top (Listing 1's
    # lesson); since the columnar layout packed the scans, decode
    # arithmetic dilutes the shares, but a stall-biased load must still
    # rank among the hot instructions
    assert any("load" in h[2] for h in hot)
