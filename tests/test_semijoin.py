"""Tests for semi/anti joins and subquery unnesting."""

import pytest

from repro import Column, DataType, Database, Schema
from repro.errors import SqlError
from repro.plan.logical import LogicalSemiJoin
from repro.plan.physical import PhysicalSemiJoin
from repro.sql import parse
from repro.sql.binder import Binder

from tests.conftest import rows_match


@pytest.fixture(scope="module")
def db():
    database = Database()
    t = DataType
    items = database.create_table("items", Schema([
        Column("id", t.INT), Column("kind", t.STRING), Column("price", t.DECIMAL),
    ]))
    items.extend([
        (1, "a", 1.0), (2, "a", 2.0), (3, "b", 5.0), (4, "c", 0.5), (5, "d", 9.0),
    ])
    kinds = database.create_table("kinds", Schema([
        Column("name", t.STRING), Column("tasty", t.INT),
    ]))
    kinds.extend([("a", 1), ("b", 0), ("c", 1)])
    database.finalize()
    return database


def both(db, sql):
    compiled = db.execute(sql).rows
    oracle = db.execute_interpreted(sql).rows
    assert compiled == oracle, (compiled, oracle)
    return compiled


def test_exists_semi_join(db):
    rows = both(db, "select id from items where exists "
                    "(select name from kinds where name = kind) order by id")
    assert rows == [(1,), (2,), (3,), (4,)]


def test_not_exists_anti_join(db):
    rows = both(db, "select id from items where not exists "
                    "(select name from kinds where name = kind) order by id")
    assert rows == [(5,)]


def test_in_subquery(db):
    rows = both(db, "select id from items where kind in "
                    "(select name from kinds where tasty = 1) order by id")
    assert rows == [(1,), (2,), (4,)]


def test_not_in_subquery(db):
    rows = both(db, "select id from items where kind not in "
                    "(select name from kinds where tasty = 1) order by id")
    assert rows == [(3,), (5,)]


def test_in_subquery_with_group_by_having(db):
    rows = both(db, "select id from items i where i.kind in "
                    "(select kind from items where price > 1.50 "
                    " group by kind having count(*) >= 1) order by id")
    assert rows == [(1,), (2,), (3,), (5,)]


def test_correlated_exists_with_residual(db):
    """Q21's pattern: another row with the same key but a different value."""
    rows = both(db, "select id from items i where exists "
                    "(select id from items i2 where i2.kind = i.kind "
                    " and i2.id <> i.id) order by id")
    assert rows == [(1,), (2,)]  # only the two 'a' items pair up


def test_correlated_not_exists_with_residual(db):
    rows = both(db, "select id from items i where not exists "
                    "(select id from items i2 where i2.kind = i.kind "
                    " and i2.id <> i.id) order by id")
    assert rows == [(3,), (4,), (5,)]


def test_semi_join_with_inner_join_in_subquery(db):
    """Q20's pattern: the subquery itself joins two tables."""
    rows = both(db, "select id from items where kind in "
                    "(select i2.kind from items i2, kinds k "
                    " where i2.kind = k.name and k.tasty = 1 and i2.price > 0.75) "
                    "order by id")
    assert rows == [(1,), (2,)]


def test_subquery_combined_with_scalar_predicates(db):
    rows = both(db, "select id from items where price > 0.75 and kind in "
                    "(select name from kinds where tasty = 1) order by id")
    assert rows == [(1,), (2,)]


def test_semi_join_dedup_semantics(db):
    """A probe tuple passes once even with several matching entries."""
    rows = both(db, "select id from items i where exists "
                    "(select id from items i2 where i2.kind = i.kind) order by id")
    assert rows == [(1,), (2,), (3,), (4,), (5,)]  # self-match, no duplicates


def test_plan_shape(db):
    bound = Binder(db.catalog).bind(parse(
        "select id from items where exists "
        "(select name from kinds where name = kind)"
    ))
    semis = [n for n in bound.plan.walk() if isinstance(n, LogicalSemiJoin)]
    assert len(semis) == 1
    assert not semis[0].anti
    from repro.plan.physical import plan_physical

    physical = plan_physical(bound.plan, bound.model)
    assert any(isinstance(n, PhysicalSemiJoin) for n in physical.walk())


def test_unsupported_forms_rejected(db):
    with pytest.raises(SqlError, match="correlated"):
        db.execute("select id from items where exists (select name from kinds)")
    with pytest.raises(SqlError, match="ORDER BY"):
        db.execute("select id from items where kind in "
                   "(select name from kinds order by name)")
    with pytest.raises(SqlError, match="nested"):
        db.execute("select id from items where kind in "
                   "(select name from kinds where name in "
                   " (select kind from items))")
    with pytest.raises(SqlError, match="top-level"):
        db.execute("select id from items where price > 1.0 or kind in "
                   "(select name from kinds)")
    with pytest.raises(SqlError, match="one column"):
        db.execute("select id from items where kind in "
                   "(select name, tasty from kinds)")


def test_semi_join_profiling_attribution(tpch_db):
    from repro.data.queries import ALL_QUERIES

    profile = tpch_db.profile(ALL_QUERIES["q21"].sql)
    summary = profile.attribution_summary()
    assert summary.attributed_share > 0.9
    roles = {t.role for t in profile.task_costs()}
    assert "semi-probe" in roles or "semi-build" in roles


def test_semi_join_parallel_execution(tpch_db):
    from repro.data.queries import ALL_QUERIES

    sql = ALL_QUERIES["q4"].sql
    serial = tpch_db.execute(sql)
    parallel = tpch_db.execute(sql, workers=3)
    assert rows_match(parallel.rows, serial.rows)


def test_scalar_subquery_in_where(db):
    rows = both(db, "select id from items where price > "
                    "(select avg(price) a from items) order by id")
    avg = (1.0 + 2.0 + 5.0 + 0.5 + 9.0) / 5
    expected = [(i,) for i, p in [(1, 1.0), (2, 2.0), (3, 5.0), (4, 0.5), (5, 9.0)]
                if p > avg]
    assert rows == expected


def test_scalar_subquery_in_having(db):
    rows = both(db, "select kind, sum(price) s from items group by kind "
                    "having sum(price) > (select sum(price) t from items) / 3 "
                    "order by kind")
    # total 17.5; threshold ~5.83; groups: a=3.0 b=5.0 c=0.5 d=9.0 -> only d
    assert len(rows) == 1


def test_scalar_subquery_in_select_list(db):
    rows = both(db, "select id, price - (select min(price) m from items) rel "
                    "from items order by id")
    assert rows[0][1] == 0.5  # 1.00 - 0.50


def test_nested_scalar_subqueries(db):
    rows = both(db, "select count(*) n from items where price > "
                    "(select min(price) m from items where price > "
                    " (select min(price) m2 from items))")
    # innermost min = 0.5; next min above it = 1.0; count(price > 1.0) = 3
    assert rows == [(3,)]


def test_scalar_subquery_multiple_rows_rejected(db):
    from repro.errors import ReproError

    with pytest.raises(ReproError, match="one value"):
        db.execute("select id from items where price > "
                   "(select price from items)")
