"""Tests for the concurrent query service (repro.serve)."""

import io

import pytest

from repro import Database
from repro.__main__ import main
from repro.pgo import ProfileStore
from repro.serve import (
    CANCELLED,
    COMPILE_ERROR,
    INSTRUCTION_LIMIT,
    QUEUE_FULL,
    SESSION_CLOSED,
    TIMEOUT,
    QueryService,
    ServiceConfig,
    ServiceError,
    WorkloadItem,
    load_workload,
    run_workload,
    synthetic_workload,
)

SQL_AGG = (
    "SELECT category, SUM(price) FROM sales, products "
    "WHERE sales.id = products.id GROUP BY category ORDER BY category"
)
SQL_COUNT = "SELECT COUNT(*) FROM sales WHERE price > 100.0"
SQL_TOPK = (
    "SELECT id, price FROM sales WHERE price > 450.0 ORDER BY price DESC"
)


@pytest.fixture(scope="module")
def db():
    return Database.example(n_sales=2000, n_products=100)


def make_service(db, **overrides):
    defaults = dict(workers=4, max_inflight=8, morsel_size=97)
    defaults.update(overrides)
    return QueryService(db, ServiceConfig(**defaults))


def invariant_signature(result):
    """The interleaving-invariant per-query counters plus the rows."""
    return (
        result.instructions,
        result.loads,
        result.stores,
        tuple(sorted(result.task_counts.items())),
        tuple(result.rows or ()),
    )


# -- basic service behaviour ------------------------------------------------


def test_service_matches_engine_rows(db):
    service = make_service(db)
    tickets = [service.submit(sql) for sql in (SQL_AGG, SQL_COUNT, SQL_TOPK)]
    results = service.drain()
    assert len(results) == 3
    assert all(r.ok for r in results)
    for ticket, sql in zip(tickets, (SQL_AGG, SQL_COUNT, SQL_TOPK)):
        got = service.result(ticket)
        assert got is not None and got.ok
        assert got.rows == db.execute(sql).rows


def test_empty_group_by_does_not_hang(db):
    # an always-false predicate leaves the aggregation hash table empty,
    # so the scan-groups pipeline prepares a zero-morsel domain; the
    # phase machine must fall through to the next pipeline instead of
    # leaving the execution in-flight forever
    sql = (
        "SELECT category, SUM(price) FROM sales, products "
        "WHERE sales.id = products.id AND price < price "
        "GROUP BY category ORDER BY category"
    )
    service = make_service(db)
    ticket = service.submit(sql)
    service.drain()
    result = service.result(ticket)
    assert result is not None and result.ok
    assert result.rows == db.execute(sql).rows == []
    assert not service.inflight


def test_queue_full_sheds_with_stable_code(db):
    service = make_service(db, max_queue=2)
    service.submit(SQL_COUNT)
    service.submit(SQL_COUNT)
    with pytest.raises(ServiceError) as exc_info:
        service.submit(SQL_COUNT)
    assert exc_info.value.code == QUEUE_FULL
    assert "[QUEUE_FULL]" in str(exc_info.value)
    assert service.stats()["shed"] == 1
    # the queued pair still runs to completion
    results = service.drain()
    assert [r.ok for r in results] == [True, True]


def test_timed_out_query_releases_workers(db):
    service = make_service(db)
    doomed = service.submit(SQL_AGG, timeout_cycles=1_000)
    healthy = [service.submit(SQL_COUNT) for _ in range(3)]
    service.drain()
    failed = service.result(doomed)
    assert failed.status == "failed"
    assert failed.error_code == TIMEOUT
    for ticket in healthy:
        assert service.result(ticket).ok
    # workers are free again: a follow-up workload runs clean
    assert not service.inflight
    follow_up = service.submit(SQL_AGG)
    service.drain()
    assert service.result(follow_up).ok


def test_cancel_queued_query(db):
    service = make_service(db)
    keep = service.submit(SQL_COUNT)
    drop = service.submit(SQL_COUNT)
    assert service.cancel(drop) is True
    assert service.cancel(drop) is False  # already finalized
    service.drain()
    assert service.result(keep).ok
    cancelled = service.result(drop)
    assert cancelled.status == "cancelled"
    assert cancelled.error_code == CANCELLED


def test_closed_session_rejects_submissions(db):
    service = make_service(db)
    session = service.session("ephemeral")
    session.close()
    with pytest.raises(ServiceError) as exc_info:
        session.submit(SQL_COUNT)
    assert exc_info.value.code == SESSION_CLOSED
    # opening the same name again hands out a fresh session (a reopen)
    reopened = service.session("ephemeral")
    assert reopened is not session and not reopened.closed


def test_instruction_budget_fails_query(db):
    service = make_service(db)
    ticket = service.submit(SQL_AGG, max_instructions=50)
    other = service.submit(SQL_COUNT)
    service.drain()
    assert service.result(ticket).error_code == INSTRUCTION_LIMIT
    assert service.result(other).ok


def test_compile_error_becomes_failed_result(db):
    service = make_service(db)
    ticket = service.submit("SELECT nonsense FROM nowhere")
    service.drain()
    result = service.result(ticket)
    assert result.status == "failed"
    assert result.error_code == COMPILE_ERROR


# -- determinism and isolation ----------------------------------------------


def _interleaved_run(fast_vm: bool):
    database = Database.example(n_sales=1200, n_products=60)
    service = QueryService(database, ServiceConfig(
        workers=4, max_inflight=8, morsel_size=97, seed=7, fast_vm=fast_vm,
    ))
    items = synthetic_workload(service, queries=9, clients=3)
    summary = run_workload(service, items)
    assert summary.clean
    return [
        (
            r.ticket, r.session, r.sql, r.status,
            r.instructions, r.loads, r.stores,
            tuple(sorted(r.task_counts.items())),
            r.latency_cycles, r.busy_cycles, r.samples,
            tuple(r.rows or ()),
        )
        for r in summary.results
    ]


@pytest.mark.parametrize("fast_vm", [True, False])
def test_seeded_interleaving_is_deterministic(fast_vm):
    first = _interleaved_run(fast_vm)
    second = _interleaved_run(fast_vm)
    assert first == second


def test_fast_vm_matches_interpreter_exactly():
    assert _interleaved_run(True) == _interleaved_run(False)


def test_concurrent_counters_match_solo_run(db):
    concurrent = make_service(db)
    session_tickets = [
        concurrent.session(f"client-{i}").submit(SQL_AGG) for i in range(8)
    ]
    concurrent.drain()
    signatures = {
        invariant_signature(concurrent.result(t)) for t in session_tickets
    }
    # 8 in-flight copies on 4 shared workers: per-query counters are
    # bit-identical across instances...
    assert len(signatures) == 1

    solo = make_service(db, max_inflight=1)
    ticket = solo.submit(SQL_AGG)
    solo.drain()
    # ...and identical to the same query run with nothing else in flight
    assert invariant_signature(solo.result(ticket)) == signatures.pop()


# -- continuous profiling ----------------------------------------------------


def test_tag_accuracy_under_concurrency(db):
    service = make_service(db)
    items = synthetic_workload(service, queries=8, clients=4)
    summary = run_workload(service, items)
    assert summary.clean
    stats = service.stats()
    assert stats["samples"] > 0
    assert stats["tag_accuracy"] >= 0.99
    # the public snapshot API carries the same aggregate (and is what
    # the fleet merger consumes) — no reaching into profiler internals
    snapshot = service.profile_snapshot()
    assert snapshot.accuracy >= 0.99
    assert snapshot.queries == 8
    assert snapshot.samples == stats["samples"]
    assert snapshot.templates  # per-template operator costs aggregated
    profile = snapshot.workload_profile()
    assert profile.latency_p95 >= profile.latency_p50 > 0


def test_profiler_feeds_pgo_store(db):
    store = ProfileStore()
    service = QueryService(
        db,
        ServiceConfig(workers=2, max_inflight=2, morsel_size=128),
        pgo_store=store,
    )
    ticket = service.submit(SQL_AGG)
    service.drain()
    assert service.result(ticket).ok
    fingerprints = store.fingerprints()
    assert len(fingerprints) == 1
    assert store.feedback(fingerprints[0]).runs == 1


def test_profiling_off_runs_clean(db):
    service = make_service(db, profiling=False)
    ticket = service.submit(SQL_AGG)
    service.drain()
    result = service.result(ticket)
    assert result.ok
    assert result.samples == 0
    assert result.rows == db.execute(SQL_AGG).rows
    assert service.workload_profile() is None
    assert service.profile_snapshot() is None


def test_warmed_plans_survive_epochs(db):
    service = make_service(db)
    service.warm([SQL_COUNT])
    hits_before = db.plan_cache.hits
    for _ in range(3):
        service.submit(SQL_COUNT)
        service.drain()  # each drain tears down one epoch
    assert service.stats()["epochs"] >= 3
    assert db.plan_cache.hits >= hits_before + 3


# -- snapshot merge algebra ---------------------------------------------------


def _small_snapshot(db, queries=4, clients=2):
    service = make_service(db, workers=2)
    items = synthetic_workload(service, queries=queries, clients=clients)
    summary = run_workload(service, items)
    assert summary.clean
    return service.profile_snapshot()


def test_snapshot_merge_identity(db):
    """Regression: merge used ``Counter + Counter``, which silently drops
    zero-count keys, so merging with an empty snapshot was not a no-op."""
    from collections import Counter

    from repro.serve.profiler import ProfileSnapshot

    snapshot = _small_snapshot(db)
    # plant a zero-count region key: the old implementation lost it
    snapshot.regions["phantom-region"] = 0
    for stats in snapshot.templates.values():
        stats.operator_samples["phantom-op"] = 0
        break
    assert ProfileSnapshot.empty().merge(snapshot) == snapshot
    assert snapshot.merge(ProfileSnapshot.empty()) == snapshot
    identity = ProfileSnapshot.empty().merge(ProfileSnapshot.empty())
    assert identity == ProfileSnapshot.empty()
    assert identity.regions == Counter()


def test_snapshot_merge_associative_with_disjoint_templates(db):
    from repro.serve.profiler import ProfileSnapshot

    a = _small_snapshot(db, queries=4, clients=2)
    b = _small_snapshot(db, queries=3, clients=1)
    c = ProfileSnapshot.empty()
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left == right
    assert left.samples == a.samples + b.samples
    assert set(left.templates) == set(a.templates) | set(b.templates)


def test_snapshot_merge_combines_view_maintenance(db):
    from repro.serve.profiler import ProfileSnapshot
    from repro.views import ViewService

    service = make_service(db, workers=2)
    views = ViewService(service)
    views.register(
        "g", "select category, count(*) n from products group by category"
    )
    snapshot = service.profile_snapshot()
    assert snapshot.views
    doubled = snapshot.merge(snapshot)
    assert doubled.maintenance_samples == 2 * snapshot.maintenance_samples
    assert (
        doubled.maintenance_instructions
        == 2 * snapshot.maintenance_instructions
    )
    for view_id, stats in snapshot.views.items():
        assert doubled.views[view_id].samples == 2 * stats.samples
        assert doubled.views[view_id].batches == 2 * stats.batches
    # a shard with no view tier merges in without disturbing view stats
    merged = snapshot.merge(ProfileSnapshot.empty())
    assert merged == snapshot


# -- workload files and CLI --------------------------------------------------


def test_load_workload_jsonl(tmp_path):
    path = tmp_path / "workload.jsonl"
    path.write_text(
        "# comment line\n"
        '{"sql": "SELECT COUNT(*) FROM sales", "client": "a"}\n'
        "\n"
        '{"sql": "SELECT COUNT(*) FROM sales", "priority": 1}\n'
    )
    items = load_workload(path)
    assert items == [
        WorkloadItem(sql="SELECT COUNT(*) FROM sales", client="a"),
        WorkloadItem(sql="SELECT COUNT(*) FROM sales", priority=1),
    ]


def test_run_workload_summary(db):
    service = make_service(db)
    items = [
        WorkloadItem(sql=SQL_COUNT, client="a"),
        WorkloadItem(sql="SELECT broken FROM nowhere", client="b"),
    ]
    summary = run_workload(service, items, warm=False)
    assert summary.submitted == 2
    assert summary.completed == 1
    assert summary.failed == 1
    assert not summary.clean


def test_cli_serve_synthetic_report():
    out = io.StringIO()
    code = main(
        ["serve", "--synthetic", "--queries", "6", "--clients", "2",
         "--report", "--strict"],
        out,
    )
    text = out.getvalue()
    assert code == 0
    assert "6 ok, 0 failed" in text
    assert "tag accuracy" in text
    assert "workload profile" in text or "template" in text


def test_cli_serve_strict_fails_on_bad_query(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"sql": "SELECT broken FROM nowhere"}\n')
    out = io.StringIO()
    assert main(["serve", "--workload", str(path)], out) == 0
    out = io.StringIO()
    assert main(["serve", "--workload", str(path), "--strict"], out) == 1
    assert "COMPILE_ERROR" in out.getvalue()
