"""Tests for offline profiling sessions (the §5.2.2 metadata-file flow)."""

import pytest

from repro.data.queries import FIG9_QUERY
from repro.errors import ProfilingError
from repro.profiling.session import load_session, save_session


@pytest.fixture(scope="module")
def saved(tpch_db, tmp_path_factory):
    profile = tpch_db.profile(FIG9_QUERY.sql)
    directory = tmp_path_factory.mktemp("session")
    save_session(profile, directory)
    return profile, directory


def test_session_files_written(saved):
    _, directory = saved
    for name in ("tagging.json", "program.json", "samples.jsonl", "meta.json"):
        assert (directory / name).exists()


def test_offline_summary_matches_live(saved):
    profile, directory = saved
    session = load_session(directory)
    live = profile.attribution_summary()
    offline = session.summary()
    assert offline["total_samples"] == live.total_samples
    assert offline["operator_share"] == pytest.approx(live.operator_share)
    assert offline["kernel_share"] == pytest.approx(live.kernel_share)
    assert offline["unattributed_share"] == pytest.approx(
        live.unattributed_share
    )


def test_offline_operator_weights_match_live(saved):
    profile, directory = saved
    session = load_session(directory)
    live = {
        op.label: weight
        for op, weight in profile.processor.operator_weights(
            profile.attributions
        ).items()
    }
    offline = session.operator_weights()
    assert set(offline) == set(live)
    for label, weight in live.items():
        assert offline[label] == pytest.approx(weight)


def test_offline_register_tag_disambiguation(saved):
    profile, directory = saved
    session = load_session(directory)
    runtime_records = [
        r for r in session.samples if session._region_at(r["ip"]) == "runtime"
    ]
    assert runtime_records, "some samples should be in shared runtime code"
    resolved = [
        r for r in runtime_records if session.attribute(r)[0] == "operator"
    ]
    assert len(resolved) / len(runtime_records) > 0.9


def test_offline_callstack_session(tpch_db, tmp_path):
    from repro import ProfilerConfig, ProfilingMode

    profile = tpch_db.profile(
        FIG9_QUERY.sql, ProfilerConfig(mode=ProfilingMode.CALLSTACK)
    )
    save_session(profile, tmp_path)
    session = load_session(tmp_path)
    summary = session.summary()
    live = profile.attribution_summary()
    assert summary["operator_share"] == pytest.approx(live.operator_share)


def test_load_missing_session(tmp_path):
    with pytest.raises(ProfilingError):
        load_session(tmp_path / "nope")


def test_meta_round_trip(saved):
    profile, directory = saved
    session = load_session(directory)
    assert session.meta["period"] == profile.config.period
    assert session.meta["cycles"] == profile.result.cycles


# -- serve sessions under view subscriptions ---------------------------------
#
# A service session that subscribes to a materialized view holds a
# standing delivery channel; closing or reopening the session must never
# leave the (old or new) subscriber with a gap or a duplicate version.


def _view_setup():
    from collections import Counter

    from repro import Database
    from repro.serve import QueryService, ServiceConfig
    from repro.views import ViewService

    db = Database.example(n_sales=300, n_products=30)
    service = QueryService(db, ServiceConfig(workers=2))
    views = ViewService(service)
    views.register(
        "g",
        "select id % 5 as b, sum(price) as total, count(*) as n "
        "from sales group by id % 5",
    )
    table = db.catalog.table("sales")
    live = [
        (raw[0], raw[1] / 100, raw[2] / 100, raw[3] / 100)
        for raw in zip(*table.columns)
    ]
    return service, views, live, Counter


def _apply_one(views, live, step):
    row = (100_000 + step, 10.0 * (step + 1), 1.19, 5.0)
    views.apply({"sales": [(row, 1), (live[step], -1)]})


def _replay(updates, Counter):
    """Fold a snapshot + delta stream into the state bag it describes."""
    bag = Counter()
    for update in updates:
        if update.kind == "snapshot":
            bag = Counter()
            for row in update.rows:
                bag[row] += 1
        else:
            for row, weight in update.rows:
                bag[row] += weight
    return +bag


def test_closed_session_stops_receiving_deltas():
    service, views, live, Counter = _view_setup()
    session = service.session("client")
    subscription = views.subscribe("g", session)
    _apply_one(views, live, 0)
    session.close()
    _apply_one(views, live, 1)
    updates = subscription.pull()
    # snapshot + exactly the one pre-close delta; the post-close batch
    # must not be delivered, and the subscription is dropped
    assert [u.kind for u in updates] == ["snapshot", "delta"]
    assert not subscription.active
    assert subscription not in views.view("g").subscribers


def test_reopened_session_gets_consistent_snapshot_and_deltas():
    service, views, live, Counter = _view_setup()
    session = service.session("client")
    stale = views.subscribe("g", session)
    _apply_one(views, live, 0)
    session.close()
    reopened = service.session("client")
    assert reopened is not session and not reopened.closed

    # deltas applied between reopen and resubscribe reach no one...
    _apply_one(views, live, 1)
    fresh = views.subscribe("g", reopened)
    _apply_one(views, live, 2)
    _apply_one(views, live, 3)

    updates = fresh.pull()
    # ...because the fresh subscription starts from a snapshot taken at
    # the current version: no gap, no duplicate
    assert [u.kind for u in updates] == ["snapshot", "delta", "delta"]
    versions = [u.version for u in updates]
    assert versions == list(range(versions[0], versions[0] + 3))
    maintained = Counter()
    for row in views.view("g").materialize():
        maintained[row] += 1
    assert _replay(updates, Counter) == maintained

    # the superseded subscription saw only its own era
    stale_updates = stale.pull()
    assert [u.kind for u in stale_updates] == ["snapshot", "delta"]
    assert not stale.active


def test_reopen_supersedes_even_unclosed_subscription():
    """A reopen hands out a *new* session object under the same name; a
    subscription pinned to the old object must stop receiving even though
    the old object was never explicitly closed after the reopen."""
    service, views, live, Counter = _view_setup()
    session = service.session("client")
    subscription = views.subscribe("g", session)
    session.close()
    reopened = service.session("client")
    assert service.sessions.sessions["client"] is reopened
    _apply_one(views, live, 0)
    updates = subscription.pull()
    assert [u.kind for u in updates] == ["snapshot"]
    assert not subscription.active


def test_two_sessions_one_view_independent_queues():
    service, views, live, Counter = _view_setup()
    a = views.subscribe("g", service.session("a"))
    _apply_one(views, live, 0)
    b = views.subscribe("g", service.session("b"))
    _apply_one(views, live, 1)
    a_updates = a.pull()
    b_updates = b.pull()
    assert [u.kind for u in a_updates] == ["snapshot", "delta", "delta"]
    assert [u.kind for u in b_updates] == ["snapshot", "delta"]
    # both streams replay to the same maintained state
    maintained = Counter()
    for row in views.view("g").materialize():
        maintained[row] += 1
    assert _replay(a_updates, Counter) == maintained
    assert _replay(b_updates, Counter) == maintained
