"""Tests for offline profiling sessions (the §5.2.2 metadata-file flow)."""

import pytest

from repro.data.queries import FIG9_QUERY
from repro.errors import ProfilingError
from repro.profiling.session import load_session, save_session


@pytest.fixture(scope="module")
def saved(tpch_db, tmp_path_factory):
    profile = tpch_db.profile(FIG9_QUERY.sql)
    directory = tmp_path_factory.mktemp("session")
    save_session(profile, directory)
    return profile, directory


def test_session_files_written(saved):
    _, directory = saved
    for name in ("tagging.json", "program.json", "samples.jsonl", "meta.json"):
        assert (directory / name).exists()


def test_offline_summary_matches_live(saved):
    profile, directory = saved
    session = load_session(directory)
    live = profile.attribution_summary()
    offline = session.summary()
    assert offline["total_samples"] == live.total_samples
    assert offline["operator_share"] == pytest.approx(live.operator_share)
    assert offline["kernel_share"] == pytest.approx(live.kernel_share)
    assert offline["unattributed_share"] == pytest.approx(
        live.unattributed_share
    )


def test_offline_operator_weights_match_live(saved):
    profile, directory = saved
    session = load_session(directory)
    live = {
        op.label: weight
        for op, weight in profile.processor.operator_weights(
            profile.attributions
        ).items()
    }
    offline = session.operator_weights()
    assert set(offline) == set(live)
    for label, weight in live.items():
        assert offline[label] == pytest.approx(weight)


def test_offline_register_tag_disambiguation(saved):
    profile, directory = saved
    session = load_session(directory)
    runtime_records = [
        r for r in session.samples if session._region_at(r["ip"]) == "runtime"
    ]
    assert runtime_records, "some samples should be in shared runtime code"
    resolved = [
        r for r in runtime_records if session.attribute(r)[0] == "operator"
    ]
    assert len(resolved) / len(runtime_records) > 0.9


def test_offline_callstack_session(tpch_db, tmp_path):
    from repro import ProfilerConfig, ProfilingMode

    profile = tpch_db.profile(
        FIG9_QUERY.sql, ProfilerConfig(mode=ProfilingMode.CALLSTACK)
    )
    save_session(profile, tmp_path)
    session = load_session(tmp_path)
    summary = session.summary()
    live = profile.attribution_summary()
    assert summary["operator_share"] == pytest.approx(live.operator_share)


def test_load_missing_session(tmp_path):
    with pytest.raises(ProfilingError):
        load_session(tmp_path / "nope")


def test_meta_round_trip(saved):
    profile, directory = saved
    session = load_session(directory)
    assert session.meta["period"] == profile.config.period
    assert session.meta["cycles"] == profile.result.cycles
