"""Tests for lexer, parser, binder, and the interpreted execution path."""

import pytest

from repro.errors import SqlError
from repro.sql import parse, tokenize
from repro.sql.lexer import TokenKind
from repro.sql import ast

from tests.helpers import run_interpreted, small_catalog


# -- lexer -------------------------------------------------------------


def test_tokenize_basics():
    tokens = tokenize("SELECT a, b FROM t WHERE x >= 1.5 -- comment\n;")
    kinds = [t.kind for t in tokens]
    assert kinds[0] is TokenKind.KEYWORD
    assert tokens[0].text == "select"
    assert any(t.kind is TokenKind.NUMBER and t.value == 1.5 for t in tokens)
    assert kinds[-1] is TokenKind.EOF


def test_tokenize_string_escapes():
    tokens = tokenize("select 'it''s'")
    assert tokens[1].value == "it's"


def test_tokenize_rejects_junk():
    with pytest.raises(SqlError):
        tokenize("select @")


def test_tokenize_unterminated_string():
    with pytest.raises(SqlError):
        tokenize("select 'oops")


# -- parser -------------------------------------------------------------


def test_parse_shapes():
    stmt = parse(
        "Select k.name, sum(i.price) as total "
        "From items i, kinds k "
        "Where i.kind = k.name and i.price > 1 "
        "Group By k.name Order By total desc Limit 2;"
    )
    assert len(stmt.items) == 2
    assert stmt.items[1].alias == "total"
    assert [t.alias for t in stmt.tables] == ["i", "k"]
    assert stmt.where is not None
    assert len(stmt.group_by) == 1
    assert stmt.order_by[0].ascending is False
    assert stmt.limit == 2


def test_parse_between_in_like_case():
    stmt = parse(
        "select case when a between 1 and 2 then 1 else 0 end "
        "from t where b in (1, 2, 3) and c not like 'x%' "
        "and d between date '1994-01-01' and date '1995-01-01'"
    )
    case = stmt.items[0].expr
    assert isinstance(case, ast.Case)
    assert isinstance(case.whens[0][0], ast.Between)


def test_parse_operator_precedence():
    stmt = parse("select a + b * c - d from t")
    expr = stmt.items[0].expr
    # ((a + (b*c)) - d)
    assert isinstance(expr, ast.BinaryOp) and expr.op == "-"
    assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "+"
    assert isinstance(expr.left.right, ast.BinaryOp) and expr.left.right.op == "*"


def test_parse_errors():
    with pytest.raises(SqlError):
        parse("select from t")
    with pytest.raises(SqlError):
        parse("select a from t limit x")
    with pytest.raises(SqlError):
        parse("select a from t where a like 5")
    with pytest.raises(SqlError):
        parse("select a from t extra junk here")


# -- binder + interpreter -----------------------------------------------


def test_simple_scan_and_filter():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog, "select id from items where price > 1.60 order by id"
    )
    assert rows == [(3,), (4,), (6,)]


def test_string_equality_and_order():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog, "select id from items where kind = 'banana' order by id"
    )
    assert rows == [(2,), (5,)]


def test_absent_string_equality_is_false():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog, "select id from items where kind = 'durian'"
    )
    assert rows == []


def test_absent_string_range_uses_rank():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog, "select id from items where kind < 'azzz' order by id"
    )
    # only 'apple' sorts before 'azzz'
    assert rows == [(1,), (3,), (6,)]


def test_like_predicate():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog, "select id from items where kind like '%an%' order by id"
    )
    assert rows == [(2,), (5,)]


def test_not_like_and_in():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select id from items where kind not like 'a%' "
        "and id in (1, 2, 3, 4) order by id",
    )
    assert rows == [(2,), (4,)]


def test_date_comparison():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select id from items where sold >= date '2020-02-01' "
        "and sold < date '2021-01-01' order by id",
    )
    assert rows == [(3,), (4,), (5,)]


def test_join_and_decimal_arithmetic():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select i.id, i.price * 2 double_price from items i, kinds k "
        "where i.kind = k.name and k.tasty = 1 order by i.id",
    )
    ids = [r[0] for r in rows]
    assert ids == [1, 3, 4, 6]
    # price encoded in cents; *2 keeps cents
    assert rows[0][1] == 300


def test_group_by_with_aggregates():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select kind, count(*) n, sum(price) total, min(price) lo, max(price) hi "
        "from items group by kind order by kind",
    )
    # kinds sorted: apple, banana, cherry
    assert [r[1] for r in rows] == [3, 2, 1]
    assert rows[0][2] == 530  # 150+200+180 cents
    assert rows[1][3] == 60 and rows[1][4] == 75


def test_avg_lowering_produces_natural_units():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog, "select avg(price) a from items where kind = 'banana'"
    )
    assert rows[0][0] == pytest.approx((0.75 + 0.60) / 2)


def test_global_aggregation_without_group_by():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(catalog, "select count(*) n, sum(price) s from items")
    assert rows == [(6, 1190)]


def test_case_expression():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select sum(case when kind = 'apple' then price else 0 end) apples "
        "from items",
    )
    assert rows[0][0] == 530


def test_order_by_aggregate_desc_and_limit():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select kind, sum(price) total from items group by kind "
        "order by total desc limit 2",
    )
    assert [r[0] for r in rows] == [
        catalog.dictionary.id_of("apple"),
        catalog.dictionary.id_of("cherry"),
    ]


def test_year_function():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog, "select year(sold) y, count(*) n from items group by year(sold) "
        "order by y"
    )
    assert rows == [(2020, 5), (2021, 1)]


def test_join_order_hint_is_respected():
    catalog = small_catalog()
    sql = (
        "select count(*) n from items i, kinds k where i.kind = k.name"
    )
    rows_a, plan_a, _ = run_interpreted(catalog, sql, hint=["i", "k"])
    rows_b, plan_b, _ = run_interpreted(catalog, sql, hint=["k", "i"])
    assert rows_a == rows_b == [(6,)]


def test_binder_errors():
    from repro.errors import ReproError

    catalog = small_catalog()
    with pytest.raises(SqlError):
        run_interpreted(catalog, "select nope from items")
    with pytest.raises(ReproError):
        run_interpreted(catalog, "select id from items, kinds")  # cross product
    with pytest.raises(SqlError):
        run_interpreted(catalog, "select id, sum(price) from items group by kind")
    with pytest.raises(SqlError):
        run_interpreted(catalog, "select kind from items where price")


def test_explain_analyze_tuple_counts():
    catalog = small_catalog()
    rows, physical, interp = run_interpreted(
        catalog, "select count(*) n from items where kind = 'apple'"
    )
    assert rows == [(3,)]
    from repro.plan.physical import PhysicalScan, PhysicalSelect

    for node in physical.walk():
        if isinstance(node, PhysicalScan):
            assert interp.tuple_counts[node.op_id] == 6
        if isinstance(node, PhysicalSelect):
            assert interp.tuple_counts[node.op_id] == 3


def test_having_filters_groups():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select kind, count(*) n from items group by kind "
        "having count(*) >= 2 order by kind",
    )
    assert [r[1] for r in rows] == [3, 2]  # apple, banana; cherry dropped


def test_having_with_decimal_threshold_and_logic():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select kind, sum(price) s from items group by kind "
        "having sum(price) > 1.40 and not (count(*) = 1) order by kind",
    )
    assert len(rows) == 1  # only apple: sum 5.30, count 3


def test_having_can_reference_unselected_aggregate():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select kind from items group by kind having max(price) > 2.50",
    )
    assert len(rows) == 1  # cherry


def test_having_without_group_by_rejected():
    catalog = small_catalog()
    with pytest.raises(SqlError):
        run_interpreted(catalog, "select id from items having id > 1")


def test_select_distinct():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog, "select distinct kind from items order by kind"
    )
    assert len(rows) == 3


def test_select_distinct_with_aggregates_rejected():
    catalog = small_catalog()
    with pytest.raises(SqlError):
        run_interpreted(catalog, "select distinct kind, count(*) c from items")


def test_min_max_over_strings_are_lexicographic():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog, "select min(kind) lo, max(kind) hi from items"
    )
    lo_id, hi_id = rows[0]
    assert catalog.dictionary.value_of(lo_id) == "apple"
    assert catalog.dictionary.value_of(hi_id) == "cherry"


def test_order_by_string_descending():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog, "select distinct kind from items order by kind desc"
    )
    names = [catalog.dictionary.value_of(r[0]) for r in rows]
    assert names == ["cherry", "banana", "apple"]


def test_derived_table_basic():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select t.kind, t.total from "
        "(select kind, sum(price) total from items group by kind) t "
        "order by t.kind",
    )
    assert len(rows) == 3
    assert rows[0][1] == 530  # apple cents


def test_derived_table_joined_with_base():
    catalog = small_catalog()
    rows, _, _ = run_interpreted(
        catalog,
        "select i.id from items i, "
        "(select kind k, max(price) mx from items group by kind) t "
        "where i.kind = t.k and i.price = t.mx order by i.id",
    )
    # priciest per kind: banana #2 (0.75), apple #3 (2.00), cherry #4 (5.25)
    assert rows == [(2,), (3,), (4,)]


def test_derived_table_requires_alias():
    catalog = small_catalog()
    with pytest.raises(SqlError, match="alias"):
        run_interpreted(catalog, "select 1 x from (select kind from items)")


def test_derived_table_scoping():
    """Outer columns are not visible inside an uncorrelated derived table."""
    catalog = small_catalog()
    with pytest.raises(SqlError, match="unknown column|unknown table"):
        run_interpreted(
            catalog,
            "select i.id from items i, "
            "(select kind from items where price > i.price group by kind) t "
            "where i.kind = t.kind",
        )
