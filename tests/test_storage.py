"""The columnar storage engine: encodings, zone maps, boundary layouts.

Covers the loader heuristics, the encode/decode round trips, the German
16-byte string layout, zone-map pruning soundness (plain vs pruned vs
compressed layouts agree on every query), and the boundary cases the
fuzzer's grammar rarely hits head-on: empty tables, single-row trailing
segments, all-equal RLE columns, predicates straddling a segment
boundary, and dictionary strings at the inline-prefix boundary.
"""

import re

import pytest

from repro import Database
from repro.catalog import Column, DataType, Schema
from repro.data.queries import ALL_QUERIES
from repro.errors import ReproError
from repro.storage import (
    Encoding,
    GermanStringTable,
    StorageConfig,
    analyze_segments,
    bits_for_range,
    decode_segment,
    encode_segment,
    pack_words,
    run_lengths,
    unpack_word,
)
from repro.vm.memory import CACHE_LINE, Memory

from .conftest import rows_match


# ---------------------------------------------------------------------------
# encoding primitives


def test_bits_for_range_picks_smallest_legal_width():
    assert bits_for_range(0) == 1
    assert bits_for_range(1) == 1
    assert bits_for_range(2) == 2
    assert bits_for_range(3) == 2
    assert bits_for_range(4) == 4
    assert bits_for_range(255) == 8
    assert bits_for_range(256) == 16
    assert bits_for_range((1 << 32) - 1) == 32
    assert bits_for_range(1 << 32) is None


@pytest.mark.parametrize("bits", [1, 2, 4, 8, 16, 32])
def test_pack_unpack_roundtrip(bits):
    per_word = 64 // bits
    values = [(i * 2654435761) % (1 << bits) for i in range(3 * per_word + 1)]
    words = pack_words(values, bits)
    got = [unpack_word(words[i // per_word], i % per_word, bits)
           for i in range(len(values))]
    assert got == values


def test_run_lengths_exclusive_ends():
    assert run_lengths([5, 5, 7, 7, 7, 2]) == [(5, 2), (7, 5), (2, 6)]
    assert run_lengths([1]) == [(1, 1)]
    assert run_lengths([]) == []


@pytest.mark.parametrize("kind", list(Encoding))
def test_encode_decode_roundtrip(kind):
    values = [100, 100, 100, 103, 103, 250, 250, 250, 250, 17]
    [analysis] = analyze_segments(values, 16)
    bits = 8 if kind in (Encoding.FOR, Encoding.DICT) else 0
    encoded = encode_segment(kind, values, analysis, bits)
    assert decode_segment(kind, encoded, analysis.rows, bits) == values


def test_for_constant_segment_has_no_payload():
    values = [42] * 8
    [analysis] = analyze_segments(values, 8)
    encoded = encode_segment(Encoding.FOR, values, analysis, 0)
    assert encoded.data == []
    assert encoded.base == 42
    assert decode_segment(Encoding.FOR, encoded, 8, 0) == values


# ---------------------------------------------------------------------------
# configuration validation


def test_config_rejects_non_power_of_two_segments():
    with pytest.raises(ReproError):
        StorageConfig(segment_rows=100)
    with pytest.raises(ReproError):
        StorageConfig(segment_rows=1)


def test_plain_and_pruned_twins_share_layout_knobs():
    plain = StorageConfig.plain(segment_rows=16)
    pruned = StorageConfig.pruned(segment_rows=16)
    assert not plain.compress and not plain.prune
    assert not pruned.compress and pruned.prune
    assert plain.segment_rows == pruned.segment_rows


# ---------------------------------------------------------------------------
# boundary layouts


def _db(rows, dtype=DataType.INT, config=None, sort_key=None):
    """A one-table database: column "v" plus a row-id column "k"."""
    db = Database(storage=config or StorageConfig(segment_rows=4))
    t = db.create_table("t", Schema([
        Column("k", DataType.INT),
        Column("v", dtype),
    ]))
    t.extend([(i, v) for i, v in enumerate(rows)])
    if sort_key:
        t.sort_key = sort_key
    db.finalize()
    return db


def test_empty_table_builds_and_scans():
    db = _db([])
    storage = db.storage.table("t")
    assert storage.segment_count == 0
    for column in storage.columns:
        assert column.segments == []
    result = db.execute("select sum(v) from t")
    assert result.rows == [(None,)] or result.rows == [(0,)]


def test_single_row_trailing_segment():
    # 9 rows at segment_rows=4: segments of 4, 4, and 1
    db = _db(list(range(9)), sort_key="k")
    storage = db.storage.table("t")
    assert storage.segment_count == 3
    column = storage.column(1)
    assert [s.rows for s in column.segments] == [4, 4, 1]
    result = db.execute("select sum(v) from t where v >= 8")
    assert result.rows == [(8,)]


def test_all_equal_column_chooses_rle():
    db = _db([7] * 12)
    column = db.storage.table("t").column(1)
    assert column.encoding is Encoding.RLE
    assert all(s.min_value == s.max_value == 7 for s in column.segments)
    result = db.execute("select count(k) from t where v = 7")
    assert result.rows == [(12,)]


def test_predicate_straddling_segment_boundary():
    # values 0..15 sorted; the window [3, 5] spans segments [0..3], [4..7]
    values = list(range(16))
    db = _db(values, sort_key="v")
    plain = _db(values, config=StorageConfig.plain(segment_rows=4),
                sort_key="v")
    sql = "select sum(v) from t where v >= 3 and v <= 5"
    assert db.execute(sql).rows == plain.execute(sql).rows == [(12,)]


def test_zone_maps_skip_out_of_range_segments():
    db = _db(list(range(32)), sort_key="k",
             config=StorageConfig.pruned(segment_rows=4))
    result = db.execute("select sum(v) from t where v < 4")
    assert result.rows == [(6,)]
    stats = db.storage.prune_stats
    assert stats, "scan emitted no zone-map counters"
    total_skipped = sum(s.skipped for s in stats.values())
    assert total_skipped > 0, "no segment was pruned"


def test_forced_encoding_override():
    config = StorageConfig(
        segment_rows=4, force=(("t", "v", Encoding.FOR),)
    )
    db = _db([10, 11, 12, 13, 10, 11, 12, 13], config=config)
    assert db.storage.table("t").column(1).encoding is Encoding.FOR
    assert db.execute("select sum(v) from t").rows == [(92,)]


def test_float_columns_stay_plain():
    # FLOAT payloads are raw doubles: no integer frames, no zone compares
    db = _db([1.5, 2.5, 3.5, 4.5, 5.5], dtype=DataType.FLOAT)
    assert db.storage.table("t").column(1).encoding is Encoding.PLAIN
    # DECIMAL is integer cents after catalog encoding, so it compresses
    db2 = _db([1.5, 2.5, 3.5, 4.5, 5.5], dtype=DataType.DECIMAL)
    assert db2.storage.table("t").column(1).encoding is not Encoding.PLAIN


def test_segment_payloads_are_cache_line_aligned():
    db = Database.tpch(scale=0.001, seed=42,
                       storage=StorageConfig(segment_rows=16))
    for table_storage in db.storage.tables.values():
        for column in table_storage.columns:
            assert column.dir_addr % CACHE_LINE == 0
            if column.encoding is Encoding.PLAIN:
                if column.plain_addr is not None:
                    assert column.plain_addr % CACHE_LINE == 0
            elif column.segments:
                assert column.segments[0].data_addr % CACHE_LINE == 0


# ---------------------------------------------------------------------------
# German strings: 16-byte entries, 12-byte inline boundary


def test_german_string_inline_boundary():
    # lengths 11, 12 (inline max), and 13 (spilled) sharing a prefix
    memory = Memory(1 << 16)
    words = ["aaaaaaaaaab", "aaaaaaaaaabb", "aaaaaaaaaabbc", "zzz", ""]
    table = GermanStringTable.build(_FakeDictionary(words), memory)
    for i, w in enumerate(words):
        assert table.value_of(memory, i) == w
    order = sorted(range(len(words)), key=lambda i: words[i])
    for a, b in zip(order, order[1:]):
        assert table.compare(memory, a, b) < 0
        assert table.compare(memory, b, a) > 0
        assert table.compare(memory, a, a) == 0


class _FakeDictionary:
    def __init__(self, values):
        self._values = list(values)

    def __len__(self):
        return len(self._values)

    def value_of(self, i):
        return self._values[i]


def test_dict_ids_at_inline_prefix_boundary_query():
    """Dictionary-encoded string predicates still work when values
    collide on the 12-byte inline prefix (ids must disambiguate)."""
    db = Database(storage=StorageConfig(segment_rows=4))
    t = db.create_table("t", Schema([
        Column("k", DataType.INT),
        Column("s", DataType.STRING),
    ]))
    near = ["aaaaaaaaaabb", "aaaaaaaaaabbc", "aaaaaaaaaabbd", "short"]
    t.extend([(i, near[i % len(near)]) for i in range(12)])
    db.finalize()
    result = db.execute("select count(k) from t where s = 'aaaaaaaaaabbc'")
    assert result.rows == [(3,)]


# ---------------------------------------------------------------------------
# satellite 1: optimizer statistics from the loader pass


def test_column_stats_match_full_column_pass():
    """ColumnStats derived from per-segment zone maps / dictionaries must
    equal a full-column pass, so optimizer estimates are unchanged."""
    db = Database.tpch(scale=0.001, seed=42)
    for name, table in db.catalog.tables.items():
        for index in range(len(table.schema)):
            stats = table.stats_for(index)
            column = table.columns[index]
            if not column:
                continue
            label = f"{name}.{table.schema.columns[index].name}"
            assert stats.min_value == min(column), label
            assert stats.max_value == max(column), label
            assert stats.distinct == len(set(column)), label


def test_cardinality_estimates_unchanged_by_storage():
    """The planner must see identical estimates whichever layout backs
    the table (plain, pruned, or compressed)."""
    dbs = [
        Database.tpch(scale=0.001, seed=42, storage=cfg)
        for cfg in (StorageConfig(), StorageConfig.plain(),
                    StorageConfig.pruned())
    ]
    plans = [
        re.sub(r"#\d+", "#n", db.explain(ALL_QUERIES["q3"].sql))
        for db in dbs
    ]
    assert plans[0] == plans[1] == plans[2]


# ---------------------------------------------------------------------------
# layout equivalence across every benchmark query


def test_all_queries_agree_across_layouts():
    """All 22 TPC-H queries: plain, pruned, and compressed layouts must
    produce identical bags, and the pruned layout (identical bytes,
    zone-map branches added) must not run more instructions than plain
    beyond the per-segment bookkeeping budget."""
    encoded = Database.tpch(scale=0.001, seed=7,
                            storage=StorageConfig(segment_rows=64))
    plain = Database.tpch(scale=0.001, seed=7,
                          storage=StorageConfig.plain(segment_rows=64))
    pruned = Database.tpch(scale=0.001, seed=7,
                           storage=StorageConfig.pruned(segment_rows=64))
    max_segments = max(
        t.segment_count for t in encoded.storage.tables.values()
    )
    budget = 128 * (max_segments + 1)
    for name, query in ALL_QUERIES.items():
        r_enc = encoded.execute(query.sql)
        r_plain = plain.execute(query.sql)
        r_pruned = pruned.execute(query.sql)
        assert rows_match(r_enc.rows, r_plain.rows), name
        assert rows_match(r_pruned.rows, r_plain.rows), name
        assert r_pruned.instructions <= r_plain.instructions + budget, (
            f"{name}: pruned layout ran {r_pruned.instructions} "
            f"instructions vs plain {r_plain.instructions} (+{budget})"
        )
