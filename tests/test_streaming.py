"""Tests for the streaming DSL — the second frontend on the shared stack."""

import pytest

from repro import Column, DataType, Database, Schema
from repro.errors import SqlError
from repro.streaming import EventFlow

from tests.conftest import rows_match


@pytest.fixture(scope="module")
def events_db():
    db = Database()
    t = DataType
    events = db.create_table("events", Schema([
        Column("ts", t.DATE),
        Column("user", t.STRING),
        Column("amount", t.DECIMAL),
        Column("clicks", t.INT),
    ]))
    rows = []
    import datetime

    base = datetime.date(2024, 1, 1)
    for day in range(60):
        date = (base + datetime.timedelta(days=day)).isoformat()
        rows.append((date, "alice", 10.0 + day, day % 5))
        rows.append((date, "bob", 5.0, (day * 3) % 7))
    events.extend(rows)
    db.finalize()
    return db


def basic_flow(db):
    return (EventFlow(db, "events")
            .where("clicks > 0")
            .derive(value="amount * 2")
            .tumbling_window("ts", days=7)
            .aggregate(by=["window_start", "user"],
                       totals={"total": "sum(value)", "n": "count(*)"})
            .order_by("window_start", "user"))


def test_flow_matches_interpreter(events_db):
    flow = basic_flow(events_db)
    compiled = flow.run()
    oracle = flow.run_interpreted()
    assert rows_match(compiled.rows, oracle)
    assert len(compiled.rows) > 10


def test_flow_matches_equivalent_sql(events_db):
    flow_rows = basic_flow(events_db).run().rows
    sql_rows = events_db.execute(
        "select ts - (ts % 7) as w, user, sum(amount * 2) total, count(*) n "
        "from events where clicks > 0 group by ts - (ts % 7), user "
        "order by w, user"
    ).rows
    assert rows_match(flow_rows, sql_rows)


def test_windows_are_aligned_and_wide(events_db):
    flow = (EventFlow(db := events_db, "events")
            .tumbling_window("ts", days=7)
            .aggregate(by=["window_start"], totals={"n": "count(*)"})
            .order_by("window_start"))
    rows = flow.run().rows
    import datetime

    starts = [datetime.date.fromisoformat(r[0]).toordinal() for r in rows]
    for a, b in zip(starts, starts[1:]):
        assert (b - a) % 7 == 0
    # full interior windows hold 7 days x 2 events
    assert max(r[1] for r in rows) == 14


def test_avg_total(events_db):
    flow = (EventFlow(events_db, "events")
            .tumbling_window("ts", days=30)
            .aggregate(by=["window_start"], totals={"m": "avg(amount)"})
            .order_by("window_start"))
    compiled = flow.run()
    oracle = flow.run_interpreted()
    assert rows_match(compiled.rows, oracle)
    assert all(isinstance(r[1], float) for r in compiled.rows)


def test_avg_over_empty_flow_returns_zero(events_db):
    """Regression: an ungrouped avg whose filter kills every event used to
    fault on the zero count; both execution paths now yield 0.0."""
    flow = (EventFlow(events_db, "events")
            .where("clicks > 1000000")
            .aggregate(by=[], totals={"m": "avg(amount)", "n": "count(*)"}))
    assert flow.run().rows == [(0.0, 0)]
    assert flow.run_interpreted() == [(0.0, 0)]


def test_reports_use_dsl_vocabulary(events_db):
    profile = basic_flow(events_db).profile()
    plan = profile.annotated_plan()
    assert "source events" in plan
    assert "window-agg#" in plan
    assert "where#" in plan
    assert "sink" in plan
    assert "scan " not in plan  # no SQL vocabulary leaks through
    summary = profile.attribution_summary()
    assert summary.attributed_share > 0.9


def test_flow_parallel_and_repeats(events_db):
    flow = basic_flow(events_db)
    serial = flow.run()
    parallel = basic_flow(events_db).run(workers=3)
    assert rows_match(parallel.rows, serial.rows)
    profile = basic_flow(events_db).profile(repeats=2)
    assert len(profile.iterations()) == 2


def test_select_and_limit(events_db):
    flow = (EventFlow(events_db, "events")
            .tumbling_window("ts", days=7)
            .aggregate(by=["window_start"], totals={"n": "count(*)"})
            .order_by("n", descending=True)
            .limit(3)
            .select("window_start", "n"))
    rows = flow.run().rows
    assert len(rows) == 3
    counts = [r[1] for r in rows]
    assert counts == sorted(counts, reverse=True)


def test_stage_ordering_errors(events_db):
    flow = (EventFlow(events_db, "events")
            .tumbling_window("ts", days=7)
            .aggregate(by=["window_start"], totals={"n": "count(*)"}))
    with pytest.raises(SqlError):
        flow.where("clicks > 0")
    with pytest.raises(SqlError):
        flow.aggregate(by=["window_start"], totals={"m": "count(*)"})
    with pytest.raises(SqlError):
        (EventFlow(events_db, "events")
         .tumbling_window("user", days=7))  # not a DATE column
    with pytest.raises(SqlError):
        (EventFlow(events_db, "events")
         .aggregate(by=["window_start"], totals={"n": "count(*)"}))
    with pytest.raises(SqlError):
        (EventFlow(events_db, "events")
         .aggregate(by=["ts"], totals={"n": "clicks + 1"}))


def test_having_matches_equivalent_sql(events_db):
    flow = (EventFlow(events_db, "events")
            .tumbling_window("ts", days=7)
            .aggregate(by=["window_start", "user"],
                       totals={"total": "sum(amount)", "n": "count(*)"})
            .having("n > 5 and total > 50.0")
            .order_by("window_start", "user"))
    sql_rows = events_db.execute(
        "select ts - (ts % 7) as w, user, sum(amount) total, count(*) n "
        "from events group by ts - (ts % 7), user "
        "having count(*) > 5 and sum(amount) > 50.0 "
        "order by w, user"
    ).rows
    assert rows_match(flow.run().rows, sql_rows)
    assert rows_match(flow.run_interpreted(), sql_rows)
    assert len(sql_rows) > 0


def test_having_can_filter_on_group_keys(events_db):
    flow = (EventFlow(events_db, "events")
            .aggregate(by=["user"], totals={"n": "count(*)"})
            .having("user = 'alice'"))
    rows = flow.run().rows
    assert len(rows) == 1 and rows[0][0] == "alice"


def test_having_uses_dsl_vocabulary_in_reports(events_db):
    flow = (EventFlow(events_db, "events")
            .tumbling_window("ts", days=7)
            .aggregate(by=["window_start"], totals={"n": "count(*)"})
            .having("n > 5"))
    plan = flow.profile().annotated_plan()
    assert "having#" in plan


def test_having_stage_errors(events_db):
    with pytest.raises(SqlError):
        EventFlow(events_db, "events").having("clicks > 0")
    aggregated = (EventFlow(events_db, "events")
                  .aggregate(by=["user"], totals={"n": "count(*)"}))
    with pytest.raises(SqlError) as exc_info:
        aggregated.having("clicks > 0")  # per-event column is gone
    assert "available" in str(exc_info.value)
    with pytest.raises(SqlError):
        aggregated.having("n + 1")  # not a boolean


def test_flow_on_tpch(tpch_db):
    flow = (EventFlow(tpch_db, "lineitem", label="shipments")
            .derive(revenue="l_extendedprice * (1 - l_discount)")
            .tumbling_window("l_shipdate", days=90)
            .aggregate(by=["window_start"], totals={"rev": "sum(revenue)"})
            .order_by("window_start"))
    compiled = flow.run()
    oracle = flow.run_interpreted()
    assert rows_match(compiled.rows, oracle)
    assert len(compiled.rows) > 10


def test_flow_random_windows_match_sql(events_db):
    """Window bucketing agrees with its SQL formulation for many widths."""
    for days in (1, 3, 10, 14, 365):
        flow_rows = (
            EventFlow(events_db, "events")
            .tumbling_window("ts", days=days)
            .aggregate(by=["window_start"], totals={"total": "sum(amount)"})
            .order_by("window_start")
        ).run().rows
        sql_rows = events_db.execute(
            f"select ts - (ts % {days}) w, sum(amount) total from events "
            f"group by ts - (ts % {days}) order by w"
        ).rows
        assert len(flow_rows) == len(sql_rows)
        for f, s in zip(flow_rows, sql_rows):
            assert f[1] == pytest.approx(s[1])
