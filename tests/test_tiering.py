"""Tiered adaptive execution (repro.vm.tiering).

Covers the full promotion lifecycle — rolling profile, hotness
threshold, tier-2 installation at commit points — and the two exactness
contracts that make tier choice a pure wall-clock decision: tier-2
traces reproduce the interpreter's machine state bit-for-bit, and a
guard-miss deoptimization flushes the deferred state (registers,
counters, PMU countdown, sample stream) exactly before demoting to
tier 1.
"""

import warnings

import pytest

from repro import Database
from repro.vm import costs
from repro.vm.isa import (
    CodeRegion,
    Label,
    Opcode as Op,
    Program,
    assemble,
    rebase,
)
from repro.vm.machine import Machine
from repro.vm.memory import Memory
from repro.vm.pmu import Event, PmuConfig
from repro.vm.tiering import TieringController

# a hot loop exercising every deferred-state dimension: arithmetic,
# memory traffic (LOAD/STORE through the cache model), and a data-
# dependent branch for the predictor
LOOP_SUM = [
    (Op.MOVI, 2, 0, 0),
    (Op.MOVI, 3, 0, 0),
    Label("loop"),
    (Op.CMPGE, 4, 3, 1),
    (Op.BRNZ, 4, "done", 0),
    (Op.SHLI, 5, 3, 3),
    (Op.ADD, 5, 0, 5),
    (Op.MUL, 6, 3, 3),
    (Op.STORE, 5, 6, 0),
    (Op.LOAD, 6, 5, 0),
    (Op.ANDI, 7, 6, 1),
    (Op.BRZ, 7, "even", 0),
    (Op.ADD, 2, 2, 6),
    Label("even"),
    (Op.ADDI, 3, 3, 1),
    (Op.JMP, "loop", 0, 0),
    Label("done"),
    (Op.MOV, 0, 2, 0),
    (Op.RET, 0, 0, 0),
]
# enough iterations that the rolling profile marks the loop head for
# tier-2 deferred sync even under an armed PMU: each sampling window
# re-enters the head, and the entry-count gate only defers when the
# per-entry work clears _DEFER_MIN_WORK (repro.vm.translate)
N = 2000


def build_program() -> Program:
    code, _ = assemble(LOOP_SUM)
    program = Program()
    program.append_function("f", rebase(code, 0), CodeRegion.QUERY)
    return program


def run_machine(program, *, pmu=None, fast_vm=True, tiering=None):
    machine = Machine(
        program, Memory(1 << 20), pmu_config=pmu,
        fast_vm=fast_vm, tiering=tiering,
    )
    base = machine.memory.alloc(N * 8)
    result = machine.call(0, (base, N))
    return machine, result


def observed_state(machine) -> dict:
    """Every machine-state dimension the exactness contract covers."""
    return {
        "instructions": machine.state.instructions,
        "cycles": machine.state.cycles,
        "loads": machine.state.loads,
        "stores": machine.state.stores,
        "cache_accesses": machine.caches.accesses,
        "l1_misses": machine.caches.l1_misses,
        "branches": machine.predictor.branches,
        "mispredicts": machine.predictor.mispredicts,
        "samples": [
            (s.ip, s.tsc, s.branch_taken, s.memaddr)
            for s in machine.samples.samples
        ],
        "countdown": machine._countdown,
    }


def promote(program, controller, pmu=None) -> Machine:
    """One tier-1 run under ``controller``, observed past the threshold.

    Promotion compiles the tier-2 translation variant for the observing
    machine's PMU configuration, so the warm run must be armed the same
    way as the runs that should execute specialized.
    """
    machine, _ = run_machine(program, pmu=pmu, tiering=controller)
    assert machine.tier == 1
    promoted = controller.observe(machine, machine.state.instructions)
    assert promoted
    return machine


# -- promotion lifecycle -----------------------------------------------------


def test_promotion_crosses_the_hotness_threshold():
    program = build_program()
    controller = TieringController(hot_instructions=10**9)
    machine, _ = run_machine(program, tiering=controller)
    # far below threshold: observation accumulates, never promotes
    assert not controller.observe(machine, machine.state.instructions)
    assert controller.tier_for(program) == 1
    assert machine.tier == 1

    hot = TieringController(hot_instructions=100)
    machine = promote(program, hot)
    # the observing machine re-tiers immediately (it is at a call
    # boundary); a second observation never re-promotes
    assert machine.tier == 2
    assert hot.tier_for(program) == 2
    assert not hot.observe(machine, 10**6)
    assert hot.stats()["promotions"] == 1
    assert hot.stats()["hot_programs"] == 1


def test_apply_installs_the_pending_map_on_other_machines():
    program = build_program()
    controller = TieringController(hot_instructions=100)
    promote(program, controller)
    # a machine that missed the promotion picks it up at a commit point
    late = Machine(program, Memory(1 << 20))
    assert late.tier == 1
    controller.apply(late)
    assert late.tier == 2
    # fresh machines constructed under the controller start promoted
    fresh, _ = run_machine(program, tiering=controller)
    assert fresh.tier == 2


def test_entry_counting_stops_after_promotion():
    program = build_program()
    controller = TieringController(hot_instructions=100)
    machine, _ = run_machine(program, tiering=controller)
    # tier-1 dispatches under a controller fill the per-block entry
    # counts — the profile dimension that gates deferred-sync loops
    assert machine.block_entries
    assert controller.observe(machine, machine.state.instructions)
    # observation consumed the counts, and the promoted machine's
    # driver no longer pays for counting
    assert not machine.block_entries
    base = machine.memory.alloc(N * 8)
    machine.call(0, (base, N))
    assert not machine.block_entries


# -- exactness: tier 2 and deoptimization vs the interpreter -----------------

ARMED = PmuConfig(event=Event.CYCLES, period=2048, record_memaddr=True)


def test_tier2_matches_interpreter_bit_for_bit():
    program = build_program()
    controller = TieringController(hot_instructions=100)
    promote(program, controller, pmu=ARMED)
    tiered, tiered_result = run_machine(
        program, pmu=ARMED, tiering=controller
    )
    assert tiered.tier == 2
    interp, interp_result = run_machine(program, pmu=ARMED, fast_vm=False)
    assert tiered_result == interp_result
    assert observed_state(tiered) == observed_state(interp)
    assert tiered.samples.samples, "the armed run must have sampled"


def test_forced_deopt_restores_exact_state():
    program = build_program()
    controller = TieringController(
        hot_instructions=100, guard_hook=True, trip_guard=True,
    )
    promote(program, controller, pmu=ARMED)
    tripped, tripped_result = run_machine(
        program, pmu=ARMED, tiering=controller
    )
    # the guard tripped on the first specialized loop edge: deferred
    # registers, counters, predictor and PMU countdown were flushed and
    # the machine demoted mid-query
    assert tripped.deopt_events
    assert tripped.tier == 1
    assert controller.stats()["deopts"] >= 1
    interp, interp_result = run_machine(program, pmu=ARMED, fast_vm=False)
    assert tripped_result == interp_result
    assert observed_state(tripped) == observed_state(interp)


def test_deopt_under_instruction_budget():
    program = build_program()
    controller = TieringController(
        hot_instructions=100, guard_hook=True, trip_guard=True,
    )
    promote(program, controller)

    def budgeted(machine_kwargs, limit):
        machine = Machine(program, Memory(1 << 20), **machine_kwargs)
        machine.state.max_instructions = limit
        base = machine.memory.alloc(N * 8)
        try:
            machine.call(0, (base, N))
            outcome = "ok"
        except Exception as exc:  # noqa: BLE001 - compared against twin
            outcome = f"{type(exc).__name__}"
        return outcome, machine

    for limit in (37, 333):
        out_t, tiered = budgeted({"tiering": controller}, limit)
        out_i, interp = budgeted({"fast_vm": False}, limit)
        assert out_t == out_i
        state_t, state_i = observed_state(tiered), observed_state(interp)
        state_t.pop("countdown"), state_i.pop("countdown")
        assert state_t == state_i


# -- engine integration ------------------------------------------------------

SQL = (
    "SELECT p.category, SUM(s.price * s.vat_factor) "
    "FROM sales s, products p WHERE s.id = p.id GROUP BY p.category"
)


@pytest.fixture(scope="module")
def db():
    return Database.example(n_sales=1500, n_products=50)


def test_query_results_carry_the_effective_tier(db):
    db.plan_cache.clear()
    controller = TieringController(hot_instructions=1)
    baseline = db.execute(SQL)
    first = db.execute(SQL, tiering=controller)
    second = db.execute(SQL, tiering=controller)
    assert baseline.tier == 1
    assert first.tier == 1  # ran tier 1, promoted afterwards
    assert second.tier == 2
    assert sorted(second.rows) == sorted(baseline.rows)
    # tier choice is wall-clock only: simulated counters are identical
    assert (second.cycles, second.instructions) == (
        baseline.cycles, baseline.instructions
    )


def test_enable_tiering_and_plan_cache_supersession(db):
    db.plan_cache.clear()
    controller = db.enable_tiering(hot_instructions=1)
    try:
        assert db.enable_tiering() is controller  # idempotent
        db.execute(SQL)
        result = db.execute(SQL)
        assert result.tier == 2
        assert controller.stats()["promotions"] == 1
        # the promoted plan superseded its tier-1 cache entry in place
        assert db.plan_cache.stats()["tier2_entries"] == 1
    finally:
        db.tiering = None
        db.plan_cache.clear()


def test_forced_deopt_through_the_engine(db):
    db.plan_cache.clear()
    baseline = db.execute(SQL)
    controller = TieringController(
        hot_instructions=1, guard_hook=True, trip_guard=True,
    )
    db.execute(SQL, tiering=controller)
    tripped = db.execute(SQL, tiering=controller)
    assert controller.stats()["deopts"] >= 1
    assert tripped.tier == 1  # demoted mid-query
    assert sorted(tripped.rows) == sorted(baseline.rows)
    assert (tripped.cycles, tripped.instructions) == (
        baseline.cycles, baseline.instructions
    )


def test_fast_vm_auto_disable_warns():
    program = build_program()
    low = PmuConfig(
        event=Event.INSTRUCTIONS, period=costs.FAST_VM_MIN_PERIOD - 1
    )
    with pytest.warns(RuntimeWarning, match="fast VM disarmed"):
        machine = Machine(program, Memory(1 << 20), pmu_config=low)
    assert machine.tier == 0
    # explicit fast_vm=False is a choice, not an accident: no warning
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        quiet = Machine(
            program, Memory(1 << 20), pmu_config=low, fast_vm=False
        )
    assert quiet.tier == 0


# -- serve integration -------------------------------------------------------


def test_service_promotes_and_reports_tiers():
    from repro.serve import QueryService, ServiceConfig

    database = Database.example(n_sales=1500, n_products=50)
    baseline = database.execute(SQL)
    service = QueryService(database, ServiceConfig(
        workers=2, max_inflight=4, tiering_hot_instructions=1,
    ))
    session = service.session("tiering-test")
    tickets = [session.submit(SQL) for _ in range(4)]
    service.drain()
    results = [service.result(t) for t in tickets]
    assert all(r.status == "ok" for r in results)
    tiers = [r.tier for r in results]
    assert max(tiers) == 2, f"no query re-tiered: {tiers}"
    for r in results:
        assert sorted(r.rows) == sorted(baseline.rows)
    stats = service.stats()
    assert stats["tiering"]["promotions"] >= 1


def test_service_tiering_off_never_promotes():
    from repro.serve import QueryService, ServiceConfig

    database = Database.example(n_sales=1500, n_products=50)
    service = QueryService(database, ServiceConfig(
        workers=2, max_inflight=4, tiering=False,
    ))
    session = service.session("no-tiering")
    tickets = [session.submit(SQL) for _ in range(2)]
    service.drain()
    results = [service.result(t) for t in tickets]
    assert all(r.status == "ok" for r in results)
    assert all(r.tier <= 1 for r in results)
    assert "tiering" not in service.stats()
