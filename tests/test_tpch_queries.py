"""Integration: all 22 adapted TPC-H queries, compiled vs. the oracle.

Every query runs through the full stack — SQL, optimizer, pipelines, IR,
backend, simulated machine — and its rows must match the reference
interpreter exactly (floats to 1e-9).  This is the repository's strongest
end-to-end correctness guarantee.
"""

import pytest

from repro.data.queries import ALL_QUERIES, EXAMPLE_QUERY, FIG9_QUERY

from tests.conftest import rows_match


@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_query_matches_oracle(tpch_db, name):
    query = ALL_QUERIES[name]
    compiled = tpch_db.execute(query.sql)
    oracle = tpch_db.execute_interpreted(query.sql)
    assert rows_match(compiled.rows, oracle.rows), (
        f"{name}: compiled {compiled.rows[:3]}... != oracle {oracle.rows[:3]}..."
    )


@pytest.mark.parametrize("name", ["q1", "q3", "q4", "q6", "q14"])
def test_query_is_not_trivially_empty(tpch_db, name):
    """Guard against vacuous matches: these queries must produce rows."""
    result = tpch_db.execute(ALL_QUERIES[name].sql)
    assert len(result.rows) > 0


def test_fully_ordered_queries_match_in_order(tpch_db):
    """Queries with complete sort tie-breaks must agree on row order too."""
    for name in ("q1", "q2", "q13", "q16"):
        query = ALL_QUERIES[name]
        compiled = tpch_db.execute(query.sql)
        oracle = tpch_db.execute_interpreted(query.sql)
        for got, want in zip(compiled.rows, oracle.rows):
            assert rows_match([got], [want]), f"{name}: {got} != {want}"


def test_example_query_matches(example_db):
    compiled = example_db.execute(EXAMPLE_QUERY.sql)
    oracle = example_db.execute_interpreted(EXAMPLE_QUERY.sql)
    assert rows_match(compiled.rows, oracle.rows)
    assert len(compiled.rows) > 10


def test_fig9_query_matches(tpch_db):
    compiled = tpch_db.execute(FIG9_QUERY.sql)
    oracle = tpch_db.execute_interpreted(FIG9_QUERY.sql)
    assert rows_match(compiled.rows, oracle.rows)


def test_q1_aggregates_are_plausible(tpch_db):
    rows = tpch_db.execute(ALL_QUERIES["q1"].sql).rows
    # returnflag/linestatus combinations: A/F, N/F, N/O, R/F (data dependent,
    # but A and R only occur with F, N mostly with O)
    flags = {(r[0], r[1]) for r in rows}
    assert ("A", "F") in flags and ("R", "F") in flags
    for row in rows:
        count = row[-1]
        avg_qty = row[6]
        sum_qty = row[2]
        assert abs(avg_qty - sum_qty / count) < 1e-6


def test_alternate_seed_robustness():
    """A different data seed must not break compiled-vs-oracle agreement."""
    from repro import Database

    db = Database.tpch(scale=0.0005, seed=7)
    for name in ("q1", "q4", "q6", "q14", "q19", "q21"):
        query = ALL_QUERIES[name]
        compiled = db.execute(query.sql)
        oracle = db.execute_interpreted(query.sql)
        assert rows_match(compiled.rows, oracle.rows), name
