"""Tests for the incremental materialized-view tier (repro.views)."""

from collections import Counter

import pytest

from repro import Database
from repro.errors import SqlError
from repro.serve import QueryService, ServiceConfig
from repro.streaming import EventFlow
from repro.views import VIEW_QUERY_ID_BASE, ViewError, ViewService, ZSet

from tests.conftest import rows_match


@pytest.fixture(scope="module")
def db():
    return Database.example(n_sales=400, n_products=40)


def make_views(db, **overrides):
    defaults = dict(workers=2)
    defaults.update(overrides)
    service = QueryService(db, ServiceConfig(**defaults))
    return service, ViewService(service)


def sales_rows(db):
    """The decoded sales rows (id, price, vat_factor, prod_costs)."""
    table = db.catalog.table("sales")
    return [
        (raw[0], raw[1] / 100, raw[2] / 100, raw[3] / 100)
        for raw in zip(*table.columns)
    ]


def fresh_sale(next_id, price=123.45, vat=1.19, costs=50.0):
    return (next_id, price, vat, costs)


# -- Z-sets -------------------------------------------------------------------


def test_zset_consolidates_to_zero():
    z = ZSet()
    z.add(("a",), 2)
    z.add(("a",), -2)
    assert z.weight(("a",)) == 0
    assert len(z) == 0
    assert list(z.items()) == []


def test_zset_merge_and_rows_expansion():
    a = ZSet.from_rows([("x",), ("x",), ("y",)])
    b = ZSet()
    b.add(("y",), -1)
    b.add(("z",), 1)
    a.merge(b)
    assert sorted(a.rows()) == [("x",), ("x",), ("z",)]
    assert a == ZSet.from_rows([("x",), ("x",), ("z",)])


def test_zset_negative_rows_raise():
    z = ZSet()
    z.add(("gone",), -1)
    assert not z.positive
    with pytest.raises(ValueError):
        list(z.rows())


# -- delta rules against Python oracles --------------------------------------


def test_groupby_view_tracks_inserts_and_retractions(db):
    _, views = make_views(db)
    views.register(
        "g",
        "select id % 5 as b, sum(price) as total, count(*) as n "
        "from sales group by id % 5",
    )
    live = sales_rows(db)
    next_id = max(r[0] for r in live) + 1

    batch = [(fresh_sale(next_id + i, price=100.0 + i), 1) for i in range(6)]
    batch.append((fresh_sale(next_id + 1, price=101.0), 1))  # net weight 2
    victims = [live[3], live[17]]
    batch.extend((victim, -1) for victim in victims)
    views.apply({"sales": batch})

    counted = Counter()
    for row, weight in batch:
        counted[row] += weight
    for row in live:
        counted[row] += 1

    expected = {}
    for row, weight in counted.items():
        bucket = row[0] % 5
        total, n = expected.get(bucket, (0.0, 0))
        expected[bucket] = (total + row[1] * weight, n + weight)
    got = views.view("g").materialize()
    assert len(got) == len(expected)
    for bucket, total, n in got:
        assert n == expected[bucket][1]
        assert total == pytest.approx(expected[bucket][0])


def test_minmax_retraction_recovers_previous_extreme(db):
    _, views = make_views(db)
    views.register(
        "extremes",
        "select id % 3 as b, max(price) as hi, min(price) as lo "
        "from sales group by id % 3",
    )
    live = sales_rows(db)
    bucket0 = [row for row in live if row[0] % 3 == 0]
    top = max(bucket0, key=lambda row: row[1])
    views.apply({"sales": [(top, -1)]})

    remaining = [row for row in bucket0 if row != top]
    expected_hi = max(row[1] for row in remaining)
    expected_lo = min(row[1] for row in remaining)
    got = {row[0]: row for row in views.view("extremes").materialize()}
    assert got[0][1] == pytest.approx(expected_hi)
    assert got[0][2] == pytest.approx(expected_lo)


def test_join_chain_rule_with_retractions(db):
    _, views = make_views(db)
    views.register(
        "cats",
        "select p.category as c, count(*) as n, sum(s.price) as total "
        "from sales s, products p where s.id % 40 = p.id "
        "group by p.category",
    )
    categories = dict(
        db.execute("select id as i, category as c from products").rows
    )
    live = sales_rows(db)
    next_id = max(r[0] for r in live) + 1

    inserts = [fresh_sale(next_id + i, price=10.0 * (i + 1)) for i in range(5)]
    retracts = [live[0], live[25]]
    views.apply(
        {"sales": [(row, 1) for row in inserts]
                  + [(row, -1) for row in retracts]}
    )

    weights = Counter()
    for row in live + inserts:
        weights[row] += 1
    for row in retracts:
        weights[row] -= 1
    expected = {}
    for row, weight in weights.items():
        category = categories.get(row[0] % 40)
        if category is None or weight == 0:
            continue
        n, total = expected.get(category, (0, 0.0))
        expected[category] = (n + weight, total + row[1] * weight)
    got = views.view("cats").materialize()
    assert len(got) == len(expected)
    for category, n, total in got:
        assert n == expected[category][0]
        assert total == pytest.approx(expected[category][1])


def test_semijoin_membership_flips_on_right_delta(db):
    _, views = make_views(db)
    views.register(
        "members",
        "select id as i from sales "
        "where id % 40 in (select id from products where category = 'Fan')",
    )
    products = db.execute("select id as i, category as c from products").rows
    toys = [pid for pid, category in products if category == "Fan"]
    assert toys, "the example db seeds the Fan category"
    live = sales_rows(db)
    expected = sorted(row[0] for row in live if row[0] % 40 in toys)
    assert sorted(r[0] for r in views.view("members").materialize()) == expected

    # retract one Fan product: every sale pointing at it leaves the view
    doomed = toys[0]
    views.apply({"products": [((doomed, "Fan"), -1)]})
    expected = sorted(
        row[0] for row in live if row[0] % 40 in toys and row[0] % 40 != doomed
    )
    assert sorted(r[0] for r in views.view("members").materialize()) == expected

    # and re-inserting it brings them all back
    views.apply({"products": [((doomed, "Fan"), 1)]})
    expected = sorted(row[0] for row in live if row[0] % 40 in toys)
    assert sorted(r[0] for r in views.view("members").materialize()) == expected


def test_distinct_is_maintained_as_a_set(db):
    _, views = make_views(db)
    views.register("buckets", "select distinct id % 5 as b from sales")
    assert sorted(r[0] for r in views.view("buckets").materialize()) == [
        0, 1, 2, 3, 4,
    ]
    live = sales_rows(db)
    bucket4 = [row for row in live if row[0] % 5 == 4]
    views.apply({"sales": [(row, -1) for row in bucket4]})
    assert sorted(r[0] for r in views.view("buckets").materialize()) == [
        0, 1, 2, 3,
    ]


def test_keyless_aggregate_keeps_zeros_row(db):
    _, views = make_views(db)
    views.register(
        "watch",
        "select count(*) as n, sum(price) as total "
        "from sales where price > 100000.0",
    )
    assert views.view("watch").materialize() == [(0, 0.0)]
    live = sales_rows(db)
    whale = fresh_sale(max(r[0] for r in live) + 1, price=200000.0)
    views.apply({"sales": [(whale, 1)]})
    got = views.view("watch").materialize()
    assert got[0][0] == 1 and got[0][1] == pytest.approx(200000.0)
    views.apply({"sales": [(whale, -1)]})
    assert views.view("watch").materialize() == [(0, 0.0)]


def test_topk_refills_from_state_on_retraction(db):
    _, views = make_views(db)
    views.register(
        "top",
        "select id as sale, price as price from sales "
        "order by price desc, sale asc limit 5",
    )
    live = sales_rows(db)

    def python_topk(rows):
        ordered = sorted(rows, key=lambda row: (-row[1], row[0]))
        return [(row[0], row[1]) for row in ordered[:5]]

    view = views.view("top")
    assert rows_match(view.materialize(), python_topk(live))

    # retract the current #1: the tier must refill rank 5 from full state
    champion = max(live, key=lambda row: (row[1], -row[0]))
    live.remove(champion)
    views.apply({"sales": [(champion, -1)]})
    assert view.circuit.topk.refills > 0
    assert rows_match(view.materialize(), python_topk(live))

    # a new champion enters without touching the refill path again
    refills = view.circuit.topk.refills
    usurper = fresh_sale(10_000, price=999.99)
    live.append(usurper)
    views.apply({"sales": [(usurper, 1)]})
    assert view.circuit.topk.refills == refills
    assert rows_match(view.materialize(), python_topk(live))


# -- registration refusals and delta validation ------------------------------


def test_register_refuses_unmaintainable_shapes(db):
    _, views = make_views(db)
    with pytest.raises(ViewError):
        views.register("lim", "select id as i from sales limit 3")
    with pytest.raises(ViewError):
        views.register(
            "scalar",
            "select id as i from sales "
            "where price > (select max(price) from sales) - 1.0",
        )
    views.register("ok", "select count(*) as n from sales")
    with pytest.raises(ViewError):
        views.register("ok", "select count(*) as n from sales")
    with pytest.raises(ViewError):
        views.view("missing")


def test_apply_validates_weights_and_atomicity(db):
    _, views = make_views(db)
    views.register("n", "select count(*) as n from sales")
    view = views.view("n")
    version = view.version
    with pytest.raises(ViewError):
        views.apply({"sales": [(sales_rows(db)[0], 0)]})
    with pytest.raises(ViewError):
        views.apply({"nowhere": [((1,), 1)]})
    ghost = fresh_sale(999_999)
    # a valid insert rides in the same batch as an impossible retraction:
    # nothing may move
    with pytest.raises(ViewError):
        views.apply({"sales": [(fresh_sale(999_998), 1), (ghost, -2)]})
    assert view.version == version
    assert view.materialize() == [(len(sales_rows(db)),)]


def test_apply_rejects_unknown_dictionary_string(db):
    _, views = make_views(db)
    views.register("c", "select count(*) as n from products")
    with pytest.raises(ViewError):
        views.apply({"products": [((1000, "never-seen-category"), 1)]})


# -- subscriptions ------------------------------------------------------------


def test_subscription_snapshot_plus_deltas_reconstructs_state(db):
    _, views = make_views(db)
    views.register(
        "g",
        "select id % 5 as b, sum(price) as total, count(*) as n "
        "from sales group by id % 5",
    )
    subscription = views.subscribe("g", "dashboard")
    live = sales_rows(db)
    next_id = max(r[0] for r in live) + 1
    for step in range(3):
        views.apply({
            "sales": [
                (fresh_sale(next_id + step, price=50.0 * (step + 1)), 1),
                (live[step], -1),
            ],
        })

    updates = subscription.pull()
    assert [u.kind for u in updates] == ["snapshot", "delta", "delta", "delta"]
    versions = [u.version for u in updates]
    assert versions == list(range(versions[0], versions[0] + 4))

    bag = Counter()
    for row in updates[0].rows:
        bag[row] += 1
    for update in updates[1:]:
        for row, weight in update.rows:
            bag[row] += weight
    bag = +bag
    maintained = Counter()
    for row in views.view("g").materialize():
        maintained[row] += 1
    assert bag == maintained
    assert subscription.pull() == []  # drained


def test_unregister_deactivates_subscribers(db):
    _, views = make_views(db)
    views.register("n", "select count(*) as n from sales")
    subscription = views.subscribe("n", "watcher")
    views.unregister("n")
    assert not subscription.active
    with pytest.raises(ViewError):
        views.view("n")


def test_subscribe_refuses_closed_session(db):
    service, views = make_views(db)
    views.register("n", "select count(*) as n from sales")
    session = service.session("gone")
    session.close()
    with pytest.raises(ViewError):
        views.subscribe("n", session)


# -- EventFlow standing queries ----------------------------------------------


def test_eventflow_view_with_having(db):
    _, views = make_views(db)
    flow = (
        EventFlow(db, "sales", label="tickets")
        .derive(bucket="id % 5", margin="price - prod_costs")
        .aggregate(by=["bucket"],
                   totals={"total": "sum(margin)", "n": "count(*)"})
        .having("n > 2")
    )
    views.register("margins", flow)
    view = views.view("margins")
    assert view.sql is None
    assert rows_match(view.materialize(), flow.run_interpreted())

    # drain bucket 2 below the having threshold: the group must vanish
    live = sales_rows(db)
    bucket2 = [row for row in live if row[0] % 5 == 2]
    views.apply({"sales": [(row, -1) for row in bucket2[:-2]]})
    got = view.materialize()
    assert all(row[0] != 2 for row in got)
    expected = {}
    kept = [row for row in live if row[0] % 5 != 2] + bucket2[-2:]
    for row in kept:
        total, n = expected.get(row[0] % 5, (0.0, 0))
        expected[row[0] % 5] = (total + row[1] - row[3], n + 1)
    expected = {b: v for b, v in expected.items() if v[1] > 2}
    assert len(got) == len(expected)
    for bucket, total, n in got:
        assert n == expected[bucket][1]
        assert total == pytest.approx(expected[bucket][0])


def test_eventflow_labels_reach_maintenance_report(db):
    _, views = make_views(db)
    flow = (
        EventFlow(db, "sales", label="tickets")
        .derive(margin="price - prod_costs")
        .aggregate(by=[], totals={"m": "sum(margin)", "n": "count(*)"})
        .having("n > 0")
    )
    views.register("hot", flow)
    views.apply({"sales": [(fresh_sale(50_000), 1)]})
    text = views.maintenance_report()
    assert "source tickets" in text
    assert "having#" in text
    assert "window-agg#" in text


# -- profiling attribution ----------------------------------------------------


def test_per_view_samples_sum_to_maintenance_total(db):
    service, views = make_views(db, period=2_000)
    views.register(
        "g", "select id % 5 as b, count(*) as n from sales group by id % 5"
    )
    views.register(
        "j",
        "select p.category as c, count(*) as n from sales s, products p "
        "where s.id % 40 = p.id group by p.category",
    )
    live = sales_rows(db)
    next_id = max(r[0] for r in live) + 1
    for step in range(4):
        views.apply({"sales": [(fresh_sale(next_id + step), 1)]})

    snapshot = service.profile_snapshot()
    assert snapshot.maintenance_samples > 0
    per_view = sum(stats.samples for stats in snapshot.views.values())
    assert per_view == snapshot.maintenance_samples
    assert snapshot.maintenance_instructions == views.maintenance_instructions
    for view_id, stats in snapshot.views.items():
        assert view_id > VIEW_QUERY_ID_BASE
        assert stats.name in ("g", "j")
        assert stats.instructions > 0
    # per-view counters on the view object agree with the profiler's
    for name in ("g", "j"):
        view = views.view(name)
        assert snapshot.views[view.query_id].samples == view.samples
        assert snapshot.views[view.query_id].instructions == view.instructions
    # the tagging dictionary resolves both dimensions of a view tag
    from repro.profiling.tagging import TaggingDictionary

    view = views.view("g")
    tag = TaggingDictionary.encode_tag(view.query_id, 1)
    assert views.tags.view_of_tag(tag) == "g"
    assert views.tags.view_operator_of_tag(tag) is not None
    rendered = snapshot.workload_profile().render()
    assert "view maintenance" in rendered


def test_maintenance_rides_existing_workers(db):
    """Maintenance charges land on the serve tier's workers, interleaved
    with query execution — not on a private accounting island."""
    service, views = make_views(db)
    views.register("n", "select count(*) as n from sales")
    before = [worker.state.cycles for worker in service.workers]
    views.apply({"sales": [(fresh_sale(60_000), 1)]})
    after = [worker.state.cycles for worker in service.workers]
    assert sum(after) > sum(before)
    # queries still run clean on the same workers afterwards
    ticket = service.submit("select count(*) n from sales")
    service.drain()
    assert service.result(ticket).ok


def test_views_and_queries_share_profiler_cleanly(db):
    service, views = make_views(db, period=2_000)
    views.register(
        "g", "select id % 5 as b, count(*) as n from sales group by id % 5"
    )
    ticket = service.submit(
        "select category, count(*) n from products group by category"
    )
    service.drain()
    assert service.result(ticket).ok
    views.apply({"sales": [(fresh_sale(70_000), 1)]})
    snapshot = service.profile_snapshot()
    # query samples and maintenance samples are disjoint totals
    assert snapshot.samples >= 0
    assert snapshot.maintenance_samples > 0
    assert snapshot.accuracy >= 0.99


def test_having_stage_ordering_errors(db):
    with pytest.raises(SqlError):
        EventFlow(db, "sales").having("id > 0")
    flow = (
        EventFlow(db, "sales")
        .derive(bucket="id % 5")
        .aggregate(by=["bucket"], totals={"n": "count(*)"})
    )
    with pytest.raises(SqlError):
        flow.having("price > 0")  # per-event columns are out of scope
    with pytest.raises(SqlError):
        flow.having("n + 1")  # not boolean
