"""Unit tests for the cache hierarchy and branch predictor."""

from repro.vm import costs
from repro.vm.branch import BranchPredictor
from repro.vm.cache import CacheHierarchy, CacheLevel


def test_cache_level_hit_after_miss():
    level = CacheLevel(1024, 2, 64)
    assert level.access(5) is False
    assert level.access(5) is True


def test_cache_level_lru_eviction():
    level = CacheLevel(128, 2, 64)  # 1 set, 2 ways
    level.access(1)
    level.access(2)
    level.access(1)  # 1 is now MRU
    level.access(3)  # evicts 2
    assert level.access(1) is True
    assert level.access(2) is False


def test_hierarchy_latencies():
    h = CacheHierarchy()
    first = h.access(0x1000)
    assert first == costs.LAT_MEM
    assert h.access(0x1000) == costs.LAT_L1
    assert h.l1_misses == 1 and h.l2_misses == 1


def test_hierarchy_l2_backstop():
    h = CacheHierarchy()
    h.access(0x1000)
    # Evict 0x1000's line from L1 by filling its set: same set index needs
    # addresses that differ in tag but share (line & set_mask).
    nsets = len(h.l1.sets)
    for i in range(1, costs.L1_WAYS + 1):
        h.access(0x1000 + i * nsets * costs.CACHE_LINE)
    latency = h.access(0x1000)
    assert latency == costs.LAT_L2


def test_sequential_scan_mostly_hits():
    h = CacheHierarchy()
    misses_before = h.l1_misses
    for addr in range(0, 64 * 64, 8):
        h.access(addr)
    # one miss per 64-byte line (8 words)
    assert h.l1_misses - misses_before == 64


def test_branch_predictor_learns_bias():
    p = BranchPredictor()
    for _ in range(100):
        p.record(7, True)
    assert p.mispredicts <= 2
    assert p.branches == 100


def test_branch_predictor_alternating_is_hard():
    p = BranchPredictor()
    for i in range(100):
        p.record(7, i % 2 == 0)
    assert p.mispredicts >= 40


def test_branch_predictor_per_ip_state():
    p = BranchPredictor()
    for _ in range(50):
        p.record(1, True)
        p.record(2, False)
    assert p.mispredicts <= 4
