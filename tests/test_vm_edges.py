"""Edge-case and failure-injection tests for the VM layer."""

import pytest

from repro.errors import BackendError, VMError
from repro.vm import costs
from repro.vm.isa import (
    CodeRegion,
    Label,
    Opcode as Op,
    Program,
    assemble,
    format_instruction,
    rebase,
)
from repro.vm.kernel import Kernel, SortDescriptor, SortKey, install_kernel_stubs
from repro.vm.machine import Machine
from repro.vm.memory import Memory
from repro.vm.pmu import Event, PmuConfig, SampleBuffer, Sample


def build(items, with_kernel=False, pmu=None):
    code, _ = assemble(items)
    program = Program()
    program.append_function("f", rebase(code, 0), CodeRegion.QUERY)
    memory = Memory(1 << 18)
    kernel = Kernel(memory, install_kernel_stubs(program)) if with_kernel else None
    return Machine(program, memory, pmu_config=pmu, kernel=kernel)


def test_kcall_without_kernel_faults():
    m = build([(Op.KCALL, 0, 0, 0), (Op.RET, 0, 0, 0)])
    with pytest.raises(VMError, match="kernel"):
        m.call(0)


def test_unknown_kernel_call_faults():
    m = build([(Op.KCALL, 99, 0, 0), (Op.RET, 0, 0, 0)], with_kernel=True)
    with pytest.raises(VMError, match="unknown kernel"):
        m.call(0)


def test_unknown_sort_descriptor_faults():
    m = build([(Op.KCALL, 1, 0, 0), (Op.RET, 0, 0, 0)], with_kernel=True)
    base = m.memory.alloc(16)
    with pytest.raises(VMError, match="descriptor"):
        m.call(0, (base, 1, 42))


def test_negative_alloc_faults():
    m = build([(Op.KCALL, 0, 0, 0), (Op.RET, 0, 0, 0)], with_kernel=True)
    with pytest.raises(VMError, match="negative"):
        m.call(0, (-8,))


def test_call_stack_overflow_detected():
    # a function that calls itself forever
    items = [(Op.CALL, 0, 0, 0), (Op.RET, 0, 0, 0)]
    m = build(items)
    with pytest.raises(VMError, match="stack overflow"):
        m.call(0)


def test_illegal_opcode_faults():
    m = build([(999, 0, 0, 0)])
    with pytest.raises(VMError, match="illegal opcode"):
        m.call(0)


def test_fetch_out_of_bounds_faults():
    m = build([(Op.NOP, 0, 0, 0)])  # falls off the end
    with pytest.raises(VMError):
        m.call(0)


def test_assemble_rejects_duplicate_and_missing_labels():
    with pytest.raises(BackendError, match="duplicate"):
        assemble([Label("a"), Label("a")])
    with pytest.raises(BackendError, match="undefined"):
        assemble([(Op.JMP, "nowhere", 0, 0)])


def test_program_function_named_missing():
    program = Program()
    with pytest.raises(BackendError):
        program.function_named("ghost")


def test_disassembler_smoke():
    items = [
        (Op.MOVI, 1, 5, 0),
        (Op.ADDI, 2, 1, 3),
        (Op.LOAD, 3, 2, 8),
        (Op.STORE, 2, 3, 0),
        (Op.BRZ, 3, 0, 0),
        (Op.RET, 0, 0, 0),
    ]
    program = Program()
    program.append_function("f", items, CodeRegion.QUERY)
    text = program.disassemble()
    assert "movi r1, 5" in text
    assert "load r3, [r2+8]" in text
    assert "f: ; [query]" in text
    for ins in items:
        assert format_instruction(ins)


def test_sample_buffer_flush_cycle_accounting():
    buffer = SampleBuffer(capacity=4)
    extra = 0
    for i in range(10):
        extra += buffer.record(Sample(ip=i, tsc=i))
    assert buffer.flushes == 2
    assert extra == buffer.flush_cycles
    assert buffer.pending == 2
    assert len(buffer.samples) == 10


def test_pmu_payload_costs_are_ordered():
    base = PmuConfig(period=100)
    regs = PmuConfig(period=100, record_registers=True)
    stack = PmuConfig(period=100, record_callstack=True)
    assert base.sample_cost() < regs.sample_cost() < stack.sample_cost(2)
    assert stack.sample_cost(10) > stack.sample_cost(2)
    assert base.sample_size_bytes() < regs.sample_size_bytes()
    assert regs.sample_size_bytes() == 54  # the paper's record size
    assert PmuConfig(period=100, record_callstack=True,
                     record_registers=True).sample_size_bytes() == 265


def test_sampling_jitter_is_deterministic_but_not_aliased():
    # a loop whose body has exactly 4 loads: an unjittered period of 8
    # would sample the same instruction forever
    items = [
        (Op.MOVI, 2, 0, 0),
        Label("loop"),
        (Op.LOAD, 3, 0, 0),
        (Op.LOAD, 3, 0, 8),
        (Op.LOAD, 3, 0, 16),
        (Op.LOAD, 3, 0, 24),
        (Op.ADDI, 2, 2, 1),
        (Op.CMPLTI, 4, 2, 2000),
        (Op.BRNZ, 4, "loop", 0),
        (Op.RET, 0, 0, 0),
    ]
    pmu = PmuConfig(event=Event.LOADS, period=64, record_memaddr=True)

    def run():
        m = build(items, pmu=pmu)
        base = m.memory.alloc(64)
        m.call(0, (base,))
        return [(s.ip, s.tsc) for s in m.samples.samples]

    first, second = run(), run()
    assert first == second  # deterministic
    ips = {ip for ip, _ in first}
    assert len(ips) >= 3, "jitter must spread samples across the loop body"


def test_zero_period_rejected():
    with pytest.raises(ValueError):
        PmuConfig(period=0)


def test_kernel_sort_with_limit_descriptor():
    desc = SortDescriptor(row_words=1, keys=(SortKey(0),), limit=2)
    assert desc.limit == 2  # carried through for the engine's domain clamp
