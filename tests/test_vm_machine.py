"""Unit tests for the interpreter: semantics, costs, sampling, kernel."""

import pytest

from repro.errors import VMError
from repro.vm import costs
from repro.vm.isa import CodeRegion, Label, Opcode as Op, Program, assemble, rebase
from repro.vm.kernel import Kernel, SortDescriptor, SortKey, install_kernel_stubs
from repro.vm.machine import Machine, _sdiv
from repro.vm.memory import Memory
from repro.vm.pmu import Event, PmuConfig


def build_program(items, name="f"):
    code, _ = assemble(items)
    program = Program()
    program.append_function(name, rebase(code, 0), CodeRegion.QUERY)
    return program


def make_machine(items, pmu=None, with_kernel=False):
    program = build_program(items)
    memory = Memory(1 << 20)
    kernel = None
    if with_kernel:
        kernel = Kernel(memory, install_kernel_stubs(program))
    return Machine(program, memory, pmu_config=pmu, kernel=kernel)


def test_sdiv_truncates_toward_zero():
    assert _sdiv(7, 2) == 3
    assert _sdiv(-7, 2) == -3
    assert _sdiv(7, -2) == -3
    assert _sdiv(-7, -2) == 3


def test_arithmetic_and_return():
    m = make_machine([
        (Op.MOVI, 1, 21, 0),
        (Op.ADD, 0, 1, 1),
        (Op.RET, 0, 0, 0),
    ])
    assert m.call(0) == 42
    assert m.state.instructions == 3


def test_mul_wraps_to_64_bits():
    m = make_machine([
        (Op.MOVI, 1, 2685821657736338717, 0),
        (Op.MOVI, 2, 0x123456789, 0),
        (Op.MUL, 0, 1, 2),
        (Op.RET, 0, 0, 0),
    ])
    result = m.call(0)
    assert -(1 << 63) <= result < (1 << 63)


def test_loop_sums_array():
    # r0 = base, r1 = count; returns sum of words
    items = [
        (Op.MOVI, 2, 0, 0),        # sum
        (Op.MOVI, 3, 0, 0),        # i
        Label("loop"),
        (Op.CMPGE, 4, 3, 1),
        (Op.BRNZ, 4, "done", 0),
        (Op.SHLI, 5, 3, 3),
        (Op.ADD, 5, 0, 5),
        (Op.LOAD, 6, 5, 0),
        (Op.ADD, 2, 2, 6),
        (Op.ADDI, 3, 3, 1),
        (Op.JMP, "loop", 0, 0),
        Label("done"),
        (Op.MOV, 0, 2, 0),
        (Op.RET, 0, 0, 0),
    ]
    m = make_machine(items)
    base = m.memory.alloc(10 * 8)
    for i in range(10):
        m.memory.write(base + 8 * i, i + 1)
    assert m.call(0, (base, 10)) == 55
    assert m.state.loads == 10


def test_division_semantics_and_faults():
    m = make_machine([
        (Op.MOVI, 1, -7, 0),
        (Op.MOVI, 2, 2, 0),
        (Op.SDIV, 0, 1, 2),
        (Op.RET, 0, 0, 0),
    ])
    assert m.call(0) == -3

    m = make_machine([
        (Op.MOVI, 1, 1, 0),
        (Op.MOVI, 2, 0, 0),
        (Op.SDIV, 0, 1, 2),
        (Op.RET, 0, 0, 0),
    ])
    with pytest.raises(VMError):
        m.call(0)


def test_fdiv_and_conversions():
    m = make_machine([
        (Op.MOVI, 1, 7, 0),
        (Op.MOVI, 2, 2, 0),
        (Op.FDIV, 3, 1, 2),
        (Op.CVTFI, 0, 3, 0),
        (Op.RET, 0, 0, 0),
    ])
    assert m.call(0) == 3
    assert m.regs[3] == 3.5


def test_select_min_max():
    m = make_machine([
        (Op.MOVI, 1, 0, 0),
        (Op.MOVI, 2, 10, 0),
        (Op.MOVI, 3, 20, 0),
        (Op.SELECT, 4, 1, (2, 3)),
        (Op.MIN, 5, 2, 3),
        (Op.MAX, 6, 2, 3),
        (Op.ADD, 0, 4, 5),
        (Op.ADD, 0, 0, 6),
        (Op.RET, 0, 0, 0),
    ])
    assert m.call(0) == 20 + 10 + 20


def test_null_pointer_load_faults():
    m = make_machine([
        (Op.MOVI, 1, 0, 0),
        (Op.LOAD, 0, 1, 0),
        (Op.RET, 0, 0, 0),
    ])
    with pytest.raises(VMError):
        m.call(0)


def test_instruction_budget():
    m = make_machine([
        Label("loop"),
        (Op.JMP, "loop", 0, 0),
    ])
    m.state.max_instructions = 1000
    with pytest.raises(VMError):
        m.call(0)


def test_call_and_ret_across_functions():
    program = Program()
    callee, _ = assemble([
        (Op.ADDI, 0, 0, 5),
        (Op.RET, 0, 0, 0),
    ])
    caller_items = [
        (Op.MOVI, 0, 1, 0),
        (Op.CALL, "callee", 0, 0),
        (Op.ADDI, 0, 0, 100),
        (Op.RET, 0, 0, 0),
    ]
    caller, _ = assemble(caller_items)
    caller_info = program.append_function("caller", rebase(caller, 0), CodeRegion.QUERY)
    callee_info = program.append_function(
        "callee", rebase(callee, caller_info.end), CodeRegion.RUNTIME
    )
    # patch the symbolic call target
    patched = list(program.code)
    for i, ins in enumerate(patched):
        if ins[0] == Op.CALL:
            patched[i] = (Op.CALL, callee_info.start, 0, 0)
    program.code = patched
    m = Machine(program, Memory(1 << 16))
    assert m.call(caller_info.start) == 106
    assert program.region_at(callee_info.start) is CodeRegion.RUNTIME


def test_sampling_on_instructions_period():
    items = [(Op.MOVI, 1, 0, 0)]
    items += [(Op.ADDI, 1, 1, 1)] * 1000
    items += [(Op.MOV, 0, 1, 0), (Op.RET, 0, 0, 0)]
    pmu = PmuConfig(event=Event.INSTRUCTIONS, period=100)
    m = make_machine(items, pmu=pmu)
    m.call(0)
    # ~1003 instructions / period 100 -> 10 samples
    assert 9 <= len(m.samples.samples) <= 11
    tscs = [s.tsc for s in m.samples.samples]
    assert tscs == sorted(tscs)
    assert m.state.sampling_cycles > 0


def test_sampling_records_registers_and_costs_more():
    items = [(Op.ADDI, 1, 1, 1)] * 500 + [(Op.RET, 0, 0, 0)]
    base = make_machine(items, pmu=PmuConfig(period=50))
    base.call(0)
    with_regs = make_machine(items, pmu=PmuConfig(period=50, record_registers=True))
    with_regs.call(0)
    assert with_regs.samples.samples[0].registers is not None
    assert base.samples.samples[0].registers is None
    assert with_regs.state.sampling_cycles > base.state.sampling_cycles


def test_callstack_sampling_is_much_more_expensive():
    items = [(Op.ADDI, 1, 1, 1)] * 2000 + [(Op.RET, 0, 0, 0)]
    fast = make_machine(items, pmu=PmuConfig(period=50))
    fast.call(0)
    slow = make_machine(items, pmu=PmuConfig(period=50, record_callstack=True))
    slow.call(0)
    assert slow.state.sampling_cycles > 5 * fast.state.sampling_cycles
    assert slow.samples.samples[0].callstack is not None


def test_loads_event_sampling_captures_addresses():
    items = []
    for i in range(64):
        items.append((Op.LOAD, 1, 0, i * 8))
    items.append((Op.RET, 0, 0, 0))
    pmu = PmuConfig(event=Event.LOADS, period=4, record_memaddr=True)
    m = make_machine(items, pmu=pmu)
    base = m.memory.alloc(64 * 8)
    m.call(0, (base,))
    assert len(m.samples.samples) == 16
    addrs = [s.memaddr for s in m.samples.samples]
    assert all(a is not None and base <= a < base + 64 * 8 for a in addrs)


def test_kernel_alloc_and_output(tmp_path):
    items = [
        (Op.MOVI, 0, 64, 0),
        (Op.KCALL, 0, 0, 0),      # alloc 64 bytes
        (Op.MOVI, 1, 7, 0),
        (Op.STORE, 0, 1, 0),
        (Op.STORE, 0, 1, 8),
        (Op.MOVI, 1, 2, 0),
        (Op.KCALL, 2, 0, 0),      # output_row(ptr, 2)
        (Op.RET, 0, 0, 0),
    ]
    m = make_machine(items, with_kernel=True)
    m.call(0)
    assert m.output == [(7, 7)]
    assert m.state.kernel_cycles > 0


def test_kernel_sort_orders_rows():
    items = [
        (Op.KCALL, 1, 0, 0),
        (Op.RET, 0, 0, 0),
    ]
    m = make_machine(items, with_kernel=True)
    desc = SortDescriptor(row_words=2, keys=(SortKey(0, ascending=True),))
    desc_id = m.kernel.register_sort(desc)
    base = m.memory.alloc(3 * 2 * 8)
    for i, (k, v) in enumerate([(30, 1), (10, 2), (20, 3)]):
        m.memory.write(base + i * 16, k)
        m.memory.write(base + i * 16 + 8, v)
    m.call(0, (base, 3, desc_id))
    got = [(m.memory.read(base + i * 16), m.memory.read(base + i * 16 + 8)) for i in range(3)]
    assert got == [(10, 2), (20, 3), (30, 1)]


def test_kernel_sort_descending():
    items = [(Op.KCALL, 1, 0, 0), (Op.RET, 0, 0, 0)]
    m = make_machine(items, with_kernel=True)
    desc = SortDescriptor(row_words=1, keys=(SortKey(0, ascending=False),))
    desc_id = m.kernel.register_sort(desc)
    base = m.memory.alloc(3 * 8)
    for i, k in enumerate([10, 30, 20]):
        m.memory.write(base + i * 8, k)
    m.call(0, (base, 3, desc_id))
    assert [m.memory.read(base + i * 8) for i in range(3)] == [30, 20, 10]


def test_kernel_samples_attributed_to_kernel_region():
    items = [(Op.MOVI, 0, 1 << 16, 0), (Op.KCALL, 0, 0, 0), (Op.RET, 0, 0, 0)]
    pmu = PmuConfig(event=Event.INSTRUCTIONS, period=50)
    m = make_machine(items, pmu=pmu, with_kernel=True)
    m.call(0)
    kernel_samples = [
        s for s in m.samples.samples
        if m.program.region_at(s.ip) is CodeRegion.KERNEL
    ]
    assert kernel_samples, "big alloc should produce kernel samples"


def test_buffer_flush_costs_cycles():
    items = [(Op.ADDI, 1, 1, 1)] * 3000 + [(Op.RET, 0, 0, 0)]
    pmu = PmuConfig(period=1)
    m = make_machine(items, pmu=pmu)
    m.call(0)
    assert m.samples.flushes >= 1
    assert m.samples.flush_cycles > 0


def test_branch_cost_included_in_cycles():
    taken = [
        (Op.MOVI, 1, 0, 0),
        (Op.BRZ, 1, "t", 0),
        Label("t"),
        (Op.RET, 0, 0, 0),
    ]
    m = make_machine(taken)
    m.call(0)
    assert m.state.cycles >= 2 + costs.CYCLES_BRANCH


def test_store_cost_is_fixed_but_allocates():
    # A store retires at the fixed CYCLES_STORE — the store buffer absorbs
    # the write, so retirement never waits for the hierarchy — even when
    # the target line is stone cold (see the CYCLES_STORE note in costs.py).
    cold_store = make_machine([
        (Op.STORE, 0, 1, 0),
        (Op.RET, 0, 0, 0),
    ])
    base = cold_store.memory.alloc(64)
    cold_store.call(0, (base,))
    assert cold_store.state.stores == 1
    assert cold_store.caches.l1_misses == 1  # write-allocate touched cache
    assert cold_store.state.cycles == costs.CYCLES_STORE + costs.CYCLES_RET

    # ...yet the write *allocates*: a load from the just-stored line pays
    # only the L1 hit latency, not a miss to memory.
    store_then_load = make_machine([
        (Op.STORE, 0, 1, 0),
        (Op.LOAD, 2, 0, 0),
        (Op.RET, 0, 0, 0),
    ])
    base = store_then_load.memory.alloc(64)
    store_then_load.call(0, (base,))
    assert store_then_load.caches.l1_misses == 1  # only the store's miss
    assert store_then_load.state.cycles == (
        costs.CYCLES_STORE + costs.LAT_L1 + costs.CYCLES_RET
    )

    # a cold load, by contrast, pays the full miss latency
    cold_load = make_machine([
        (Op.LOAD, 2, 0, 0),
        (Op.RET, 0, 0, 0),
    ])
    base = cold_load.memory.alloc(64)
    cold_load.call(0, (base,))
    assert cold_load.state.cycles > costs.LAT_L2 + costs.CYCLES_RET
