"""Unit tests for the simulated memory."""

import pytest

from repro.errors import VMError
from repro.vm.memory import CACHE_LINE, WORD, Memory


def test_alloc_is_word_aligned_and_zeroed():
    mem = Memory(1 << 12)
    a = mem.alloc(12, "a")
    assert a % WORD == 0
    b = mem.alloc(8, "b")
    assert b >= a + 16  # 12 rounded up to 16
    assert mem.read(a) == 0
    assert mem.read(b) == 0


def test_null_address_is_unmapped():
    mem = Memory(1 << 12)
    with pytest.raises(VMError):
        mem.read(0)
    with pytest.raises(VMError):
        mem.write(0, 1)


def test_read_write_roundtrip():
    mem = Memory(1 << 12)
    a = mem.alloc(32)
    mem.write(a + 8, -42)
    mem.write(a + 16, 3.5)
    assert mem.read(a + 8) == -42
    assert mem.read(a + 16) == 3.5


def test_unaligned_access_rejected():
    mem = Memory(1 << 12)
    a = mem.alloc(16)
    with pytest.raises(VMError):
        mem.read(a + 3)


def test_out_of_bounds_rejected():
    mem = Memory(1 << 12)
    mem.alloc(16)
    with pytest.raises(VMError):
        mem.read(1 << 20)


def test_grow_on_demand():
    mem = Memory(1 << 10)
    a = mem.alloc(1 << 12)  # bigger than initial size
    mem.write(a + (1 << 12) - 8, 7)
    assert mem.read(a + (1 << 12) - 8) == 7


def test_arena_release_and_reuse_zeroes():
    mem = Memory(1 << 12)
    mark = mem.mark()
    a = mem.alloc(16, "scratch")
    mem.write(a, 99)
    mem.release(mark)
    b = mem.alloc(16, "scratch2")
    assert b == a  # bump pointer rewound
    assert mem.read(b) == 0  # stale data not visible


def test_aligned_alloc_cache_line():
    mem = Memory(1 << 12)
    mem.alloc(12, "pad")  # misalign the bump pointer
    a = mem.alloc(40, "seg", align=CACHE_LINE)
    assert a % CACHE_LINE == 0
    b = mem.alloc(8, "next")
    assert b == a + 40  # word packing resumes after the aligned block
    # the alignment gap must be zeroed like any other fresh allocation
    mark = mem.mark()
    c = mem.alloc(256, "scratch")
    for off in range(0, 256, 8):
        mem.write(c + off, 0xDEAD)
    mem.release(mark)
    d = mem.alloc(8, "bump", align=CACHE_LINE)
    assert d % CACHE_LINE == 0
    for off in range(-(d - c), 8, 8):
        assert mem.read(d + off) == 0


def test_aligned_alloc_rejects_bad_alignment():
    mem = Memory(1 << 12)
    with pytest.raises(VMError):
        mem.alloc(8, align=48)  # not a power of two
    with pytest.raises(VMError):
        mem.alloc(8, align=4)  # below word size


def test_release_bad_mark_rejected():
    mem = Memory(1 << 12)
    with pytest.raises(VMError):
        mem.release(3)


def test_region_of_finds_named_allocation():
    mem = Memory(1 << 12)
    a = mem.alloc(64, "col.x")
    region = mem.region_of(a + 8)
    assert region is not None and region.name == "col.x"
    assert mem.region_of(a + 64) is None or mem.region_of(a + 64).name != "col.x"
