"""Parity suite for the template-translated fast VM.

The fast VM (``repro.vm.translate``) must be an *invisible* optimization:
for every program, every PMU configuration, and every failure mode, the
machine state it leaves behind — result values, instruction/cycle/load/
store counters, cache and branch-predictor statistics, error text and
faulting ip, and the complete sample stream — must be bit-identical to
the block interpreter's.  These tests run the same program through both
engines and compare everything observable.
"""

from pathlib import Path

import pytest

from repro.engine import Database, ProfilerConfig
from repro.errors import VMError
from repro.data.queries import ALL_QUERIES
from repro.fuzz import load_case, replay_case
from repro.vm import costs
from repro.vm.isa import (
    CodeRegion, Label, Opcode as Op, Program, assemble, rebase,
)
from repro.vm.kernel import Kernel, install_kernel_stubs
from repro.vm.machine import Machine
from repro.vm.memory import Memory
from repro.vm.pmu import Event, PmuConfig
from repro.vm.translate import translate_program

CORPUS_DIR = Path(__file__).parent / "corpus"

ALL_EVENTS = [
    Event.INSTRUCTIONS, Event.CYCLES, Event.LOADS,
    Event.L1_MISS, Event.BRANCH_MISS,
]


# -- helpers ---------------------------------------------------------------


def build_program(items, name="f"):
    code, _ = assemble(items)
    program = Program()
    program.append_function(name, rebase(code, 0), CodeRegion.QUERY)
    return program


def machine_observables(machine):
    return {
        "instructions": machine.state.instructions,
        "cycles": machine.state.cycles,
        "loads": machine.state.loads,
        "stores": machine.state.stores,
        "cache_accesses": machine.caches.accesses,
        "l1_misses": machine.caches.l1_misses,
        "branches": machine.predictor.branches,
        "mispredicts": machine.predictor.mispredicts,
        "samples": [
            (s.ip, s.tsc, s.branch_taken, s.memaddr)
            for s in machine.samples.samples
        ],
    }


def run_pair(
    items, pmu=None, with_kernel=False, max_instructions=None, setup=None
):
    """Run the same program on both engines; returns (fast, slow) where
    each side is ``(result_or_error, observables)``."""
    sides = []
    for fast_vm in (True, False):
        program = build_program(items)
        memory = Memory(1 << 20)
        kernel = (
            Kernel(memory, install_kernel_stubs(program))
            if with_kernel else None
        )
        machine = Machine(
            program, memory, pmu_config=pmu, kernel=kernel, fast_vm=fast_vm
        )
        if max_instructions is not None:
            machine.state.max_instructions = max_instructions
        args = setup(machine) if setup else ()
        try:
            outcome = ("ok", machine.call(0, args))
        except VMError as exc:
            outcome = ("error", str(exc), exc.ip)
        sides.append((outcome, machine_observables(machine)))
    return sides


def assert_pair_identical(items, pmu=None, **kwargs):
    fast, slow = run_pair(items, pmu=pmu, **kwargs)
    assert fast[0] == slow[0]
    assert fast[1] == slow[1]


LOOP_SUM = [
    # r0 = base, r1 = count: writes a[i] = i*i, sums back the odd ones —
    # a store, a load, and a data-dependent branch in every iteration
    (Op.MOVI, 2, 0, 0),        # sum
    (Op.MOVI, 3, 0, 0),        # i
    Label("loop"),
    (Op.CMPGE, 4, 3, 1),
    (Op.BRNZ, 4, "done", 0),
    (Op.SHLI, 5, 3, 3),
    (Op.ADD, 5, 0, 5),         # &a[i]
    (Op.MUL, 6, 3, 3),
    (Op.STORE, 5, 6, 0),       # a[i] = i*i
    (Op.LOAD, 6, 5, 0),
    (Op.ANDI, 7, 6, 1),
    (Op.BRZ, 7, "even", 0),
    (Op.ADD, 2, 2, 6),
    Label("even"),
    (Op.ADDI, 3, 3, 1),
    (Op.JMP, "loop", 0, 0),
    Label("done"),
    (Op.MOV, 0, 2, 0),
    (Op.RET, 0, 0, 0),
]

LOOP_COUNT = 50


def loop_setup(machine):
    base = machine.memory.alloc(LOOP_COUNT * 8)
    return (base, LOOP_COUNT)


# -- machine-level parity --------------------------------------------------


def test_loop_parity_unarmed():
    fast, slow = run_pair(LOOP_SUM, setup=loop_setup)
    assert fast == slow
    assert fast[0][0] == "ok"
    assert fast[0][1] == sum(i * i for i in range(LOOP_COUNT) if i % 2)


@pytest.mark.parametrize("event", ALL_EVENTS, ids=[e.name for e in ALL_EVENTS])
def test_loop_parity_every_event(event):
    pmu = PmuConfig(event=event, period=150, record_memaddr=True)
    assert_pair_identical(LOOP_SUM, pmu=pmu, setup=loop_setup)


def test_parity_at_minimum_fast_period():
    # the smallest period the fast engine still arms for: the sampling
    # windows are barely larger than a block, so the interpreter fallback
    # is exercised constantly
    pmu = PmuConfig(
        event=Event.INSTRUCTIONS, period=costs.FAST_VM_MIN_PERIOD,
        record_memaddr=True,
    )
    fast, slow = run_pair(LOOP_SUM, pmu=pmu, setup=loop_setup)
    assert fast == slow
    assert fast[1]["samples"], "expected samples at this period"


def test_fast_vm_disarms_below_minimum_period():
    pmu = PmuConfig(
        event=Event.INSTRUCTIONS, period=costs.FAST_VM_MIN_PERIOD - 1
    )
    program = build_program(LOOP_SUM)
    machine = Machine(program, Memory(1 << 20), pmu_config=pmu)
    assert machine._fast_blocks is None
    armed = Machine(
        program, Memory(1 << 20),
        pmu_config=PmuConfig(
            event=Event.INSTRUCTIONS, period=costs.FAST_VM_MIN_PERIOD
        ),
    )
    assert armed._fast_blocks is not None


def test_fast_vm_off_flag_disables_translation():
    program = build_program(LOOP_SUM)
    machine = Machine(program, Memory(1 << 20), fast_vm=False)
    assert machine._fast_blocks is None


def test_budget_error_parity():
    # the budget expires mid-loop: the fast engine must hand exactly the
    # remaining window to the interpreter so the error fires at the same
    # instruction with the same counters
    for limit in (37, 100, 333):
        fast, slow = run_pair(
            LOOP_SUM, max_instructions=limit, setup=loop_setup
        )
        assert fast == slow
        assert fast[0][0] == "error"
        assert "instruction budget exceeded" in fast[0][1]


def test_division_fault_parity():
    items = [
        (Op.MOVI, 0, 96, 0),
        (Op.MOVI, 1, 3, 0),
        Label("loop"),
        (Op.ADDI, 1, 1, -1),
        (Op.SDIV, 0, 0, 1),   # divides by 2, then 1, then faults on 0
        (Op.JMP, "loop", 0, 0),
        (Op.RET, 0, 0, 0),
    ]
    fast, slow = run_pair(items)
    assert fast == slow
    assert fast[0][0] == "error"
    assert "division by zero" in fast[0][1]


def test_kernel_call_parity():
    items = [
        (Op.MOVI, 0, 256, 0),
        (Op.KCALL, 0, 0, 0),            # kcall 0 = alloc(r0) -> ptr in r0
        (Op.MOVI, 1, 7, 0),
        (Op.STORE, 0, 1, 0),            # touch the allocation
        (Op.LOAD, 2, 0, 0),
        (Op.MOV, 0, 2, 0),
        (Op.RET, 0, 0, 0),
    ]
    assert_pair_identical(items, with_kernel=True)
    assert_pair_identical(
        items, with_kernel=True,
        pmu=PmuConfig(event=Event.CYCLES, period=2000, record_memaddr=True),
    )


def test_translation_covers_loop_and_caches():
    program = build_program(LOOP_SUM)
    translation = translate_program(program, None)
    assert 0 in translation.blocks
    # per-block metadata: worst-case instruction count, event bound, and
    # the (armed-only) linear fallback variant
    fn, max_k, bound, fallback = translation.blocks[0]
    assert callable(fn) and max_k >= 1 and bound >= 0
    assert fallback is None  # unarmed translations have no fallback
    # translations are cached per (program, event)
    m1 = Machine(program, Memory(1 << 20))
    m2 = Machine(program, Memory(1 << 20))
    assert m1._fast_blocks is m2._fast_blocks


# -- engine-level parity (TPC-H) -------------------------------------------


def _query_observables(db, sql, event, fast_vm, period=None):
    if event is None:
        result = db.execute(sql, fast_vm=fast_vm)
        return (result.rows, result.cycles, result.instructions)
    config = (
        ProfilerConfig(event=event, record_memaddr=True)
        if period is None
        else ProfilerConfig(event=event, record_memaddr=True, period=period)
    )
    profile = db.profile(sql, config=config, fast_vm=fast_vm)
    return (profile.result.rows, machine_observables(profile.machine))


@pytest.mark.parametrize("name", ["q1", "q4", "q6", "q18"])
def test_tpch_plain_parity(name):
    db = Database.tpch(scale=0.001, seed=42)
    sql = ALL_QUERIES[name].sql
    assert _query_observables(db, sql, None, True) == \
        _query_observables(db, sql, None, False)


@pytest.mark.parametrize("event", ALL_EVENTS, ids=[e.name for e in ALL_EVENTS])
def test_tpch_sample_stream_parity(event):
    # q14: join + aggregation + conditional arithmetic in a few hundred
    # ms; the period is low enough that even the rare events (L1 misses,
    # branch misses) produce a stream while the fast engine stays armed.
    # L1 misses need the plain storage layout: compressed segments shrink
    # q14's scan footprint to near-L1-resident, below one sampling period
    from repro.storage import StorageConfig

    storage = StorageConfig.plain() if event is Event.L1_MISS else None
    db = Database.tpch(scale=0.001, seed=42, storage=storage)
    sql = ALL_QUERIES["q14"].sql
    fast = _query_observables(db, sql, event, True, period=200)
    slow = _query_observables(db, sql, event, False, period=200)
    assert fast == slow
    assert fast[1]["samples"], "expected a non-empty sample stream"


def test_tpch_parallel_parity():
    db = Database.tpch(scale=0.001, seed=42)
    sql = ALL_QUERIES["q6"].sql
    fast = db.execute(sql, workers=4, morsel_size=64)
    slow = db.execute(sql, workers=4, morsel_size=64, fast_vm=False)
    assert fast.rows == slow.rows
    assert (fast.cycles, fast.instructions) == (slow.cycles, slow.instructions)


# -- corpus parity ---------------------------------------------------------


@pytest.mark.parametrize(
    "stem", ["all-null-join-keys", "having-empty-aggregates"]
)
def test_corpus_sample_stream_parity(stem):
    # the full corpus runs through the oracle (with its vm-parity check)
    # in test_corpus_replay.py; here two cases get the explicit per-event
    # sample-stream comparison
    case = load_case(CORPUS_DIR / f"{stem}.json")
    from repro.fuzz.dataset import build_database

    for event in (Event.CYCLES, Event.LOADS):
        db = build_database(case.dataset)
        fast = _query_observables(db, case.sql, event, True)
        db = build_database(case.dataset)
        slow = _query_observables(db, case.sql, event, False)
        assert fast == slow


def test_oracle_flags_vm_divergence(monkeypatch):
    # the fuzz oracle's vm-parity check must actually bite: sabotage the
    # fast engine's cycle accounting and expect a disagreement
    case = load_case(CORPUS_DIR / "all-null-join-keys.json")
    result = replay_case(case, check_pgo=False)
    assert result.agreed

    from repro.vm.machine import Machine as M

    original = M._run_fast

    def skewed(self, entry_ip):
        result = original(self, entry_ip)
        self.state.cycles += 1
        return result

    monkeypatch.setattr(M, "_run_fast", skewed)
    result = replay_case(case, check_pgo=False)
    assert any(
        d.config.startswith("vm-parity") for d in result.disagreements
    )
